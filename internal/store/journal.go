package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// The journal is the store's append-only index: one checksummed record per
// mutation. Each record is framed as
//
//	[4 bytes big-endian payload length][4 bytes CRC-32 (IEEE) of payload][payload JSON]
//
// and fsynced after every append. Because appends are the only writes, a
// crash can corrupt at most the final record; recovery reads records until
// the first short read, oversized length, or checksum mismatch and
// truncates the file there, so the journal is always a prefix of fully
// acknowledged mutations.

// Journal operations.
const (
	opPut = "put"
	opDel = "del"
)

// maxRecordLen bounds a record payload; a larger length field is treated
// as a torn tail rather than an allocation request.
const maxRecordLen = 1 << 20

// journalRec is the JSON payload of one journal record.
type journalRec struct {
	Op   string `json:"op"`
	Kind string `json:"kind"`
	Key  string `json:"key"`
	File string `json:"file,omitempty"`
	Size int64  `json:"size,omitempty"`
}

// appendRecord frames, appends and fsyncs one record. Callers hold s.mu.
func (s *Store) appendRecord(rec journalRec) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding journal record: %w", err)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := s.journal.Write(append(hdr[:], payload...)); err != nil {
		return fmt.Errorf("store: appending journal record: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		return fmt.Errorf("store: syncing journal: %w", err)
	}
	return nil
}

// recover replays the journal into the in-memory index, truncating any
// torn tail, dropping entries whose object file is missing, sweeping
// orphaned object files, and compacting the journal when dead records
// outnumber live ones.
func (s *Store) recover() error {
	path := filepath.Join(s.dir, journalName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening journal: %w", err)
	}
	s.journal = f

	good, err := s.replay(f)
	if err != nil {
		f.Close()
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: stat journal: %w", err)
	}
	if fi.Size() > good {
		// Torn tail: drop the partial record so the next append starts at
		// a clean frame boundary.
		s.stats.TruncatedBytes = fi.Size() - good
		if err := f.Truncate(good); err != nil {
			f.Close()
			return fmt.Errorf("store: truncating torn journal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: syncing truncated journal: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: seeking journal end: %w", err)
	}

	s.reconcile()
	s.sweepOrphans()

	if s.dead > s.live && s.dead > 64 {
		if err := s.compact(); err != nil {
			return err
		}
	}
	return nil
}

// replay reads records from the journal into the index and returns the
// offset of the last fully valid record. Truncation decisions are the
// caller's; replay never fails on a torn tail.
func (s *Store) replay(f *os.File) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("store: seeking journal: %w", err)
	}
	r := newByteCounter(f)
	var good int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return good, nil // clean EOF or torn header: stop at last good record
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if n > maxRecordLen {
			return good, nil // absurd length: torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return good, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return good, nil // checksum mismatch: corrupt tail
		}
		var rec journalRec
		if err := json.Unmarshal(payload, &rec); err != nil {
			return good, nil // framing valid but payload not ours: treat as corrupt tail
		}
		good = r.n
		s.stats.RecoveredRecords++
		s.applyRecord(rec)
	}
}

// applyRecord folds one replayed record into the index.
func (s *Store) applyRecord(rec journalRec) {
	ik := indexKey(rec.Kind, rec.Key)
	switch rec.Op {
	case opPut:
		if old := s.index[ik]; old != nil {
			s.accountRemove(old)
			s.order.Remove(old.elem)
			s.dead++
			s.live--
		}
		e := &entry{kind: rec.Kind, key: rec.Key, file: rec.File, size: rec.Size, pinned: s.pinned(rec.Kind)}
		e.elem = s.order.PushBack(e)
		s.index[ik] = e
		s.accountAdd(e)
		s.live++
	case opDel:
		if e := s.index[ik]; e != nil {
			delete(s.index, ik)
			s.order.Remove(e.elem)
			s.accountRemove(e)
			s.dead += 2
			s.live--
		} else {
			s.dead++
		}
	default:
		s.dead++ // unknown op from a future version: ignore but count as garbage
	}
}

// reconcile drops index entries whose object file is missing — the journal
// record survived a crash that the (earlier) object write did not reach
// disk for, which cannot happen in the normal order but can after manual
// tampering or partial restores.
func (s *Store) reconcile() {
	for ik, e := range s.index {
		if _, err := os.Stat(filepath.Join(s.dir, e.file)); err != nil {
			delete(s.index, ik)
			s.order.Remove(e.elem)
			s.accountRemove(e)
			s.dead++
			s.live--
			s.stats.DroppedEntries++
		}
	}
}

// sweepOrphans removes object files (and stray temp files) not referenced
// by the index: the residue of a crash between the object write and its
// journal append.
func (s *Store) sweepOrphans() {
	referenced := make(map[string]bool, len(s.index))
	for _, e := range s.index {
		referenced[filepath.Join(s.dir, e.file)] = true
	}
	root := filepath.Join(s.dir, objectsDir)
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if !referenced[path] {
			if os.Remove(path) == nil {
				s.stats.OrphansSwept++
			}
		}
		return nil
	})
}

// compact rewrites the journal to contain exactly the live index, using
// the same atomic write-then-rename pattern as objects. Callers run it
// from Open only, before the store is visible to other goroutines.
func (s *Store) compact() error {
	tmpPath := filepath.Join(s.dir, journalName+".tmp")
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating compacted journal: %w", err)
	}
	old := s.journal
	s.journal = tmp
	// Re-append every live record in age order; appendRecord syncs each,
	// which is acceptable at compaction frequency (once per open, at most).
	for el := s.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if err := s.appendRecord(journalRec{Op: opPut, Kind: e.kind, Key: e.key, File: e.file, Size: e.size}); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			s.journal = old
			return err
		}
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, journalName)); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		s.journal = old
		return fmt.Errorf("store: publishing compacted journal: %w", err)
	}
	old.Close()
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.dead = 0
	return nil
}

// byteCounter counts bytes consumed from the underlying reader so replay
// knows the offset of the last fully valid record.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

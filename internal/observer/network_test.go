package observer

import (
	"strings"
	"testing"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
)

func switchedSystem() *config.System {
	return &config.System{
		Name:      "obs-net",
		CoreTypes: []string{"std"},
		Cores: []config.Core{
			{Name: "c1", Type: 0, Module: 1},
			{Name: "c2", Type: 0, Module: 2},
		},
		Partitions: []config.Partition{
			{Name: "TX", Core: 0, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "S1", Priority: 2, WCET: []int64{1}, Period: 20, Deadline: 20},
					{Name: "S2", Priority: 1, WCET: []int64{1}, Period: 20, Deadline: 20},
				},
				Windows: []config.Window{{Start: 0, End: 20}}},
			{Name: "RX", Core: 1, Policy: config.EDF,
				Tasks: []config.Task{
					{Name: "R1", Priority: 1, WCET: []int64{2}, Period: 20, Deadline: 20},
					{Name: "R2", Priority: 1, WCET: []int64{2}, Period: 20, Deadline: 18},
				},
				Windows: []config.Window{{Start: 0, End: 20}}},
		},
		Messages: []config.Message{
			{Name: "m1", SrcPart: 0, SrcTask: 0, DstPart: 1, DstTask: 0, TxTime: 2},
			{Name: "m2", SrcPart: 0, SrcTask: 1, DstPart: 1, DstTask: 1, TxTime: 2},
		},
		Net: &config.Topology{
			Ports:  []config.Port{{Name: "out"}},
			Routes: [][]int{{0}, {0}},
		},
	}
}

// TestNetworkObserversAllRuns: the full observer library — including the
// switched-network minimum-latency monitor — holds in every run of a
// contended switched system.
func TestNetworkObserversAllRuns(t *testing.T) {
	sys := switchedSystem()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	m := model.MustBuild(sys)
	bad, res, err := VerifyAllRuns(m, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if bad != "" {
		t.Fatalf("violation: %s", bad)
	}
	if !res.Complete {
		t.Fatal("incomplete exploration")
	}
	t.Logf("verified %d states", res.States)
}

func TestMinLinkDelayDetectsEarlyDelivery(t *testing.T) {
	sys := switchedSystem()
	m := model.MustBuild(sys)
	o := MinLinkDelay(m)
	s := m.Net.InitialState()

	sendCh := m.SendChan(config.TaskRef{Part: 0, Task: 0})
	recvCh := m.ReceiveChan(0)

	ms := o.Init()
	send := &nsa.Transition{Kind: nsa.Broadcast, Chan: sendCh, Parts: []nsa.Part{{Aut: 0, Edge: 0}}}
	ms, bad := o.Step(ms, 4, send, m.Net, s)
	if bad != "" {
		t.Fatal(bad)
	}
	// Minimum latency is 1 hop × 2 ticks; delivery at 5 is impossible.
	recv := &nsa.Transition{Kind: nsa.Broadcast, Chan: recvCh, Parts: []nsa.Part{{Aut: 0, Edge: 0}}}
	if _, bad = o.Step(ms, 5, recv, m.Net, s); !strings.Contains(bad, "impossible before 6") {
		t.Fatalf("early delivery not flagged: %q", bad)
	}
}

func TestMinLinkDelayDetectsSpuriousDelivery(t *testing.T) {
	sys := switchedSystem()
	m := model.MustBuild(sys)
	o := MinLinkDelay(m)
	s := m.Net.InitialState()
	recv := &nsa.Transition{Kind: nsa.Broadcast, Chan: m.ReceiveChan(0), Parts: []nsa.Part{{Aut: 0, Edge: 0}}}
	if _, bad := o.Step(o.Init(), 9, recv, m.Net, s); !strings.Contains(bad, "without a pending send") {
		t.Fatalf("spurious delivery not flagged: %q", bad)
	}
}

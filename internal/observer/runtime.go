package observer

import (
	"context"
	"fmt"

	"stopwatchsim/internal/mc"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
)

// Runtime attaches observers to a simulation run as an nsa.Listener and
// records violations.
type Runtime struct {
	observers []*Observer
	states    [][]int64
	// Violations lists every observer violation seen during the run.
	Violations []string
}

// NewRuntime returns a listener advancing the given observers.
func NewRuntime(observers ...*Observer) *Runtime {
	r := &Runtime{observers: observers, states: make([][]int64, len(observers))}
	for i, o := range observers {
		r.states[i] = o.Init()
	}
	return r
}

// OnTransition implements nsa.Listener.
func (r *Runtime) OnTransition(time int64, tr *nsa.Transition, net *nsa.Network, s *nsa.State) {
	for i, o := range r.observers {
		next, bad := o.Step(r.states[i], time, tr, net, s)
		r.states[i] = next
		if bad != "" {
			r.Violations = append(r.Violations, fmt.Sprintf("%s: %s", o.Name(), bad))
		}
	}
}

// Monitors converts the observers to mc.Monitor values for exhaustive
// verification.
func Monitors(observers ...*Observer) []mc.Monitor {
	out := make([]mc.Monitor, len(observers))
	for i, o := range observers {
		out[i] = o
	}
	return out
}

// VerifyAllRuns exhaustively explores the model with the whole observer
// library composed in — the paper's §3 verification that no "bad" location
// is reachable in any run. It returns the first violation witness ("" if
// the requirements hold in every run).
func VerifyAllRuns(m *model.Model, maxStates int) (string, mc.Result, error) {
	return VerifyAllRunsContext(context.Background(), m, nsa.Budget{MaxStates: maxStates})
}

// VerifyAllRunsContext is VerifyAllRuns with cancellation and a full
// resource budget. Budget exhaustion returns the partial result together
// with a *nsa.RunError; any violation found before the stop is still
// reported in the witness string.
func VerifyAllRunsContext(ctx context.Context, m *model.Model, b nsa.Budget) (string, mc.Result, error) {
	res, err := mc.ExploreContext(ctx, m.Net, mc.Options{
		Horizon:  m.Horizon,
		Monitors: Monitors(All(m)...),
		Budget:   b,
	})
	if err != nil {
		return res.Bad, res, err
	}
	return res.Bad, res, nil
}

// VerifyRun simulates the model once with all observers attached and
// returns any violations.
func VerifyRun(m *model.Model) ([]string, error) {
	return VerifyRunContext(context.Background(), m, nsa.Budget{})
}

// VerifyRunContext is VerifyRun with cancellation and a resource budget.
// Violations observed before a budget stop are returned alongside the
// *nsa.RunError.
func VerifyRunContext(ctx context.Context, m *model.Model, b nsa.Budget) ([]string, error) {
	rt := NewRuntime(All(m)...)
	eng := nsa.NewEngine(m.Net, nsa.Options{
		Horizon:   m.Horizon,
		Listeners: []nsa.Listener{rt},
		Budget:    b,
	})
	if _, err := eng.RunContext(ctx); err != nil {
		return rt.Violations, err
	}
	return rt.Violations, nil
}

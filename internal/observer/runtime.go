package observer

import (
	"fmt"

	"stopwatchsim/internal/mc"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
)

// Runtime attaches observers to a simulation run as an nsa.Listener and
// records violations.
type Runtime struct {
	observers []*Observer
	states    [][]int64
	// Violations lists every observer violation seen during the run.
	Violations []string
}

// NewRuntime returns a listener advancing the given observers.
func NewRuntime(observers ...*Observer) *Runtime {
	r := &Runtime{observers: observers, states: make([][]int64, len(observers))}
	for i, o := range observers {
		r.states[i] = o.Init()
	}
	return r
}

// OnTransition implements nsa.Listener.
func (r *Runtime) OnTransition(time int64, tr *nsa.Transition, net *nsa.Network, s *nsa.State) {
	for i, o := range r.observers {
		next, bad := o.Step(r.states[i], time, tr, net, s)
		r.states[i] = next
		if bad != "" {
			r.Violations = append(r.Violations, fmt.Sprintf("%s: %s", o.Name(), bad))
		}
	}
}

// Monitors converts the observers to mc.Monitor values for exhaustive
// verification.
func Monitors(observers ...*Observer) []mc.Monitor {
	out := make([]mc.Monitor, len(observers))
	for i, o := range observers {
		out[i] = o
	}
	return out
}

// VerifyAllRuns exhaustively explores the model with the whole observer
// library composed in — the paper's §3 verification that no "bad" location
// is reachable in any run. It returns the first violation witness ("" if
// the requirements hold in every run).
func VerifyAllRuns(m *model.Model, maxStates int) (string, mc.Result, error) {
	res, err := mc.Explore(m.Net, mc.Options{
		Horizon:   m.Horizon,
		Monitors:  Monitors(All(m)...),
		MaxStates: maxStates,
	})
	if err != nil {
		return "", res, err
	}
	return res.Bad, res, nil
}

// VerifyRun simulates the model once with all observers attached and
// returns any violations.
func VerifyRun(m *model.Model) ([]string, error) {
	rt := NewRuntime(All(m)...)
	eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: m.Horizon, Listeners: []nsa.Listener{rt}})
	if _, err := eng.Run(); err != nil {
		return nil, err
	}
	return rt.Violations, nil
}

// Package observer implements the paper's §3 correctness requirements as
// deterministic observers over synchronization events. Each observer is an
// mc.Monitor: composed with the network product during exhaustive
// exploration it decides "bad location reachable in some run" exactly —
// the same question the paper answers with UPPAAL observer automata — and
// attached to the simulator via Runtime it checks single runs.
//
// Requirements provided (derived from ARINC 653 as in the paper):
//
//   - OneJobPerPartition (the Fig. 2 observer): at any time at most one job
//     of a partition executes.
//   - OneJobPerCore: at any time at most one job executes on a core.
//   - ExecOnlyInWindows: jobs execute only inside their partition's windows.
//   - SendAfterCompletion: a job's data broadcast happens exactly at its
//     completion.
//   - ExactLinkDelay: every delivery happens exactly the worst-case
//     transfer delay after its transfer started.
//   - NoExecBeforeData: a receiver job never executes before all its
//     messages are delivered.
//   - NoExecPastDeadline: no execution interval extends past the job's
//     absolute deadline.
//   - WCETBound: no job accumulates more processor time than its WCET.
package observer

import (
	"fmt"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
)

// event is the decoded system-level meaning of a transition, shared by all
// observers.
type event struct {
	role model.ChanRole
	task config.TaskRef // exec/preempt/send
	part int            // ready/finished/wakeup/sleep
	link int            // receive
	fin  config.TaskRef // finished: which task (from last_finished)
	job  int            // current job index of the task concerned
	ok   bool
}

func decode(m *model.Model, tr *nsa.Transition, s *nsa.State) event {
	if tr.Kind == nsa.Internal {
		return event{}
	}
	info := m.ChanInfos[tr.Chan]
	ev := event{role: info.Role, task: info.Task, part: info.Part, link: info.Link, ok: true}
	switch info.Role {
	case model.RoleExec, model.RolePreempt, model.RoleSend:
		ev.job = m.JobOf(info.Task, s)
	case model.RoleFinished:
		ti := int(s.Vars[m.LastFinishedVar(info.Part)])
		ev.fin = config.TaskRef{Part: info.Part, Task: ti}
		ev.job = m.JobOf(ev.fin, s)
	}
	return ev
}

// Observer is an mc.Monitor bound to a model.
type Observer struct {
	name string
	m    *model.Model
	init []int64
	step func(ms []int64, time int64, ev event, s *nsa.State) ([]int64, string)
}

// Name implements mc.Monitor.
func (o *Observer) Name() string { return o.name }

// Init implements mc.Monitor.
func (o *Observer) Init() []int64 {
	out := make([]int64, len(o.init))
	copy(out, o.init)
	return out
}

// Step implements mc.Monitor.
func (o *Observer) Step(ms []int64, time int64, tr *nsa.Transition, _ *nsa.Network, s *nsa.State) ([]int64, string) {
	ev := decode(o.m, tr, s)
	if !ev.ok {
		return ms, ""
	}
	return o.step(ms, time, ev, s)
}

// taskIndex flattens (partition, task) to a dense index.
func taskIndex(sys *config.System) (map[config.TaskRef]int, int) {
	idx := make(map[config.TaskRef]int)
	n := 0
	for pi := range sys.Partitions {
		for ti := range sys.Partitions[pi].Tasks {
			idx[config.TaskRef{Part: pi, Task: ti}] = n
			n++
		}
	}
	return idx, n
}

func cp(ms []int64) []int64 {
	out := make([]int64, len(ms))
	copy(out, ms)
	return out
}

// OneJobPerPartition is the Fig. 2 observer: any exec_jk must be followed by
// preempt_jk or finished_j before another exec of the same partition.
// State: per partition, the executing task index + 1 (0 = none).
func OneJobPerPartition(m *model.Model) *Observer {
	np := len(m.Sys.Partitions)
	return &Observer{
		name: "one-job-per-partition",
		m:    m,
		init: make([]int64, np),
		step: func(ms []int64, _ int64, ev event, _ *nsa.State) ([]int64, string) {
			switch ev.role {
			case model.RoleExec:
				if ms[ev.task.Part] != 0 {
					return ms, fmt.Sprintf("partition %s: exec of %s while task %d executing",
						m.Sys.Partitions[ev.task.Part].Name, m.Sys.TaskName(ev.task), ms[ev.task.Part]-1)
				}
				ms = cp(ms)
				ms[ev.task.Part] = int64(ev.task.Task) + 1
			case model.RolePreempt:
				if ms[ev.task.Part] != int64(ev.task.Task)+1 {
					return ms, fmt.Sprintf("preempt of %s which is not executing", m.Sys.TaskName(ev.task))
				}
				ms = cp(ms)
				ms[ev.task.Part] = 0
			case model.RoleFinished:
				if ms[ev.part] == int64(ev.fin.Task)+1 {
					ms = cp(ms)
					ms[ev.part] = 0
				}
			}
			return ms, ""
		},
	}
}

// OneJobPerCore checks the core-level mutual exclusion that the window
// schedule plus the schedulers must guarantee.
// State: per core, flattened executing task index + 1 (0 = none).
func OneJobPerCore(m *model.Model) *Observer {
	idx, _ := taskIndex(m.Sys)
	nc := len(m.Sys.Cores)
	coreOf := func(r config.TaskRef) int { return m.Sys.Partitions[r.Part].Core }
	return &Observer{
		name: "one-job-per-core",
		m:    m,
		init: make([]int64, nc),
		step: func(ms []int64, _ int64, ev event, _ *nsa.State) ([]int64, string) {
			switch ev.role {
			case model.RoleExec:
				c := coreOf(ev.task)
				if ms[c] != 0 {
					return ms, fmt.Sprintf("core %s: exec of %s while another job executes",
						m.Sys.Cores[c].Name, m.Sys.TaskName(ev.task))
				}
				ms = cp(ms)
				ms[c] = int64(idx[ev.task]) + 1
			case model.RolePreempt:
				c := coreOf(ev.task)
				if ms[c] == int64(idx[ev.task])+1 {
					ms = cp(ms)
					ms[c] = 0
				}
			case model.RoleFinished:
				c := coreOf(ev.fin)
				if ms[c] == int64(idx[ev.fin])+1 {
					ms = cp(ms)
					ms[c] = 0
				}
			}
			return ms, ""
		},
	}
}

// ExecOnlyInWindows checks that every exec_jk happens while the partition's
// window is open, and that execution stops (at the same instant) when the
// window closes.
// State: per partition: [awake flag, executing task + 1, window close time].
func ExecOnlyInWindows(m *model.Model) *Observer {
	np := len(m.Sys.Partitions)
	init := make([]int64, 3*np)
	for pi := 0; pi < np; pi++ {
		init[3*pi+2] = -1
	}
	return &Observer{
		name: "exec-only-in-windows",
		m:    m,
		init: init,
		step: func(ms []int64, time int64, ev event, _ *nsa.State) ([]int64, string) {
			check := func(pi int) string {
				// A job still marked executing after the window closed is a
				// violation only if time has advanced past the close.
				if ms[3*pi] == 0 && ms[3*pi+1] != 0 && time > ms[3*pi+2] {
					return fmt.Sprintf("partition %s: execution continued past window close at %d",
						m.Sys.Partitions[pi].Name, ms[3*pi+2])
				}
				return ""
			}
			for pi := 0; pi < np; pi++ {
				if bad := check(pi); bad != "" {
					return ms, bad
				}
			}
			switch ev.role {
			case model.RoleWakeup:
				ms = cp(ms)
				ms[3*ev.part] = 1
			case model.RoleSleep:
				ms = cp(ms)
				ms[3*ev.part] = 0
				ms[3*ev.part+2] = time
			case model.RoleExec:
				pi := ev.task.Part
				if ms[3*pi] == 0 {
					return ms, fmt.Sprintf("exec of %s outside a window", m.Sys.TaskName(ev.task))
				}
				ms = cp(ms)
				ms[3*pi+1] = int64(ev.task.Task) + 1
			case model.RolePreempt:
				ms = cp(ms)
				ms[3*ev.task.Part+1] = 0
			case model.RoleFinished:
				if ms[3*ev.part+1] == int64(ev.fin.Task)+1 {
					ms = cp(ms)
					ms[3*ev.part+1] = 0
				}
			}
			return ms, ""
		},
	}
}

// SendAfterCompletion checks requirement 1 of the §3 proof: every job's
// data broadcast happens exactly at (time of) its completion, and only once.
// State: per task: completion time + 1 of the last completed job with a
// pending send (0 = none pending).
func SendAfterCompletion(m *model.Model) *Observer {
	idx, nt := taskIndex(m.Sys)
	return &Observer{
		name: "send-after-completion",
		m:    m,
		init: make([]int64, nt),
		step: func(ms []int64, time int64, ev event, s *nsa.State) ([]int64, string) {
			switch ev.role {
			case model.RoleFinished:
				// Completion, not a deadline kill: the task reached x == C.
				if m.IsCompletion(ev.fin, s) {
					ms = cp(ms)
					ms[idx[ev.fin]] = time + 1
				}
			case model.RoleSend:
				i := idx[ev.task]
				if ms[i] == 0 {
					return ms, fmt.Sprintf("send of %s without a completed job", m.Sys.TaskName(ev.task))
				}
				if ms[i]-1 != time {
					return ms, fmt.Sprintf("send of %s at %d, completion was at %d",
						m.Sys.TaskName(ev.task), time, ms[i]-1)
				}
				ms = cp(ms)
				ms[i] = 0
			}
			return ms, ""
		},
	}
}

// ExactLinkDelay checks requirement 2 of the §3 proof: each delivery on a
// fixed-delay link happens exactly Delay ticks after its transfer started
// (the send, or the previous delivery when transfers queue). Routed
// messages (switched-network extension) are excluded — their delay depends
// on port contention and is checked by MinLinkDelay instead.
// State: per link: [#sends, #deliveries, transfer start time of the message
// in flight].
func ExactLinkDelay(m *model.Model) *Observer {
	nl := len(m.Sys.Messages)
	routed := make([]bool, nl)
	for h := 0; h < nl; h++ {
		routed[h] = len(m.Sys.RouteOf(h)) > 0
	}
	return &Observer{
		name: "exact-link-delay",
		m:    m,
		init: make([]int64, 3*nl),
		step: func(ms []int64, time int64, ev event, _ *nsa.State) ([]int64, string) {
			switch ev.role {
			case model.RoleSend:
				// One send may feed several links (all outgoing links of the
				// task); attribute it to each of them.
				ms = cp(ms)
				for _, h := range m.Sys.OutgoingMessages(ev.task) {
					if routed[h] {
						continue
					}
					if ms[3*h] == ms[3*h+1] { // link idle: transfer starts now
						ms[3*h+2] = time
					}
					ms[3*h]++
				}
			case model.RoleReceive:
				h := ev.link
				if routed[h] {
					return ms, ""
				}
				delay := m.Sys.Delay(&m.Sys.Messages[h])
				if time != ms[3*h+2]+delay {
					return ms, fmt.Sprintf("link %s delivered at %d, expected %d",
						m.Sys.Messages[h].Name, time, ms[3*h+2]+delay)
				}
				ms = cp(ms)
				ms[3*h+1]++
				if ms[3*h] > ms[3*h+1] { // queued transfer starts immediately
					ms[3*h+2] = time
				}
			}
			return ms, ""
		},
	}
}

// MinLinkDelay checks the switched-network invariant: a routed message is
// never delivered earlier than its uncontended end-to-end latency
// (hops × TxTime) after its send, and sends/deliveries stay balanced.
// State: per routed link: [#sends, #deliveries, time of the oldest
// undelivered send].
func MinLinkDelay(m *model.Model) *Observer {
	nl := len(m.Sys.Messages)
	minLat := make([]int64, nl)
	for h := 0; h < nl; h++ {
		route := m.Sys.RouteOf(h)
		minLat[h] = int64(len(route)) * m.Sys.Messages[h].TxTime
	}
	return &Observer{
		name: "min-link-delay",
		m:    m,
		init: make([]int64, 3*nl),
		step: func(ms []int64, time int64, ev event, _ *nsa.State) ([]int64, string) {
			switch ev.role {
			case model.RoleSend:
				ms = cp(ms)
				for _, h := range m.Sys.OutgoingMessages(ev.task) {
					if minLat[h] == 0 {
						continue
					}
					if ms[3*h] == ms[3*h+1] {
						ms[3*h+2] = time // oldest in-flight send
					}
					ms[3*h]++
				}
			case model.RoleReceive:
				h := ev.link
				if minLat[h] == 0 {
					return ms, ""
				}
				if ms[3*h] <= ms[3*h+1] {
					return ms, fmt.Sprintf("link %s delivered without a pending send", m.Sys.Messages[h].Name)
				}
				if time < ms[3*h+2]+minLat[h] {
					return ms, fmt.Sprintf("link %s delivered at %d, impossible before %d",
						m.Sys.Messages[h].Name, time, ms[3*h+2]+minLat[h])
				}
				ms = cp(ms)
				ms[3*h+1]++
				if ms[3*h] > ms[3*h+1] {
					ms[3*h+2] = time // conservative restart for the next frame
				}
			}
			return ms, ""
		},
	}
}

// NoExecBeforeData checks requirement 3 of the §3 proof: job k of a
// receiver executes only after delivery k of every incoming link.
// State: per link, the delivery count.
func NoExecBeforeData(m *model.Model) *Observer {
	nl := len(m.Sys.Messages)
	return &Observer{
		name: "no-exec-before-data",
		m:    m,
		init: make([]int64, nl),
		step: func(ms []int64, _ int64, ev event, _ *nsa.State) ([]int64, string) {
			switch ev.role {
			case model.RoleReceive:
				ms = cp(ms)
				ms[ev.link]++
			case model.RoleExec:
				for _, h := range m.Sys.IncomingMessages(ev.task) {
					if ms[h] < int64(ev.job)+1 {
						return ms, fmt.Sprintf("%s job %d executed with only %d deliveries on %s",
							m.Sys.TaskName(ev.task), ev.job, ms[h], m.Sys.Messages[h].Name)
					}
				}
			}
			return ms, ""
		},
	}
}

// NoExecPastDeadline checks that no execution interval extends beyond the
// job's absolute deadline.
// State: per task: interval start time + 1 (0 = not executing) and job.
func NoExecPastDeadline(m *model.Model) *Observer {
	idx, nt := taskIndex(m.Sys)
	deadlineOf := func(r config.TaskRef, job int) int64 {
		t := &m.Sys.Partitions[r.Part].Tasks[r.Task]
		return int64(job)*t.Period + t.Deadline
	}
	return &Observer{
		name: "no-exec-past-deadline",
		m:    m,
		init: make([]int64, 2*nt),
		step: func(ms []int64, time int64, ev event, _ *nsa.State) ([]int64, string) {
			end := func(r config.TaskRef, job int) string {
				i := idx[r]
				if ms[i] == 0 {
					return ""
				}
				if d := deadlineOf(r, job); time > d {
					return fmt.Sprintf("%s job %d executed until %d, past deadline %d",
						m.Sys.TaskName(r), job, time, d)
				}
				return ""
			}
			switch ev.role {
			case model.RoleExec:
				i := idx[ev.task]
				if d := deadlineOf(ev.task, ev.job); time > d {
					return ms, fmt.Sprintf("%s job %d dispatched at %d, past deadline %d",
						m.Sys.TaskName(ev.task), ev.job, time, d)
				}
				ms = cp(ms)
				ms[i] = time + 1
				ms[nt+i] = int64(ev.job)
			case model.RolePreempt:
				if bad := end(ev.task, ev.job); bad != "" {
					return ms, bad
				}
				ms = cp(ms)
				ms[idx[ev.task]] = 0
			case model.RoleFinished:
				if bad := end(ev.fin, ev.job); bad != "" {
					return ms, bad
				}
				ms = cp(ms)
				ms[idx[ev.fin]] = 0
			}
			return ms, ""
		},
	}
}

// WCETBound checks that no job accumulates more processor time than its
// WCET, and that completions account for exactly the WCET.
// State: per task: [interval start + 1, accumulated, job].
func WCETBound(m *model.Model) *Observer {
	idx, nt := taskIndex(m.Sys)
	return &Observer{
		name: "wcet-bound",
		m:    m,
		init: make([]int64, 3*nt),
		step: func(ms []int64, time int64, ev event, s *nsa.State) ([]int64, string) {
			accumulate := func(r config.TaskRef) ([]int64, string) {
				i := idx[r]
				if ms[3*i] == 0 {
					return ms, ""
				}
				c := m.Sys.WCETOn(r)
				next := cp(ms)
				next[3*i+1] += time - (ms[3*i] - 1)
				next[3*i] = 0
				if next[3*i+1] > c {
					return next, fmt.Sprintf("%s job %d accumulated %d > WCET %d",
						m.Sys.TaskName(r), next[3*i+2], next[3*i+1], c)
				}
				return next, ""
			}
			switch ev.role {
			case model.RoleExec:
				i := idx[ev.task]
				ms = cp(ms)
				if ms[3*i+2] != int64(ev.job) { // new job: reset accumulator
					ms[3*i+2] = int64(ev.job)
					ms[3*i+1] = 0
				}
				ms[3*i] = time + 1
			case model.RolePreempt:
				return accumulate(ev.task)
			case model.RoleFinished:
				next, bad := accumulate(ev.fin)
				if bad != "" {
					return next, bad
				}
				i := idx[ev.fin]
				if m.IsCompletion(ev.fin, s) {
					if c := m.Sys.WCETOn(ev.fin); next[3*i+1] != c {
						return next, fmt.Sprintf("%s job %d completed with %d ticks, WCET %d",
							m.Sys.TaskName(ev.fin), next[3*i+2], next[3*i+1], c)
					}
				}
				return next, ""
			}
			return ms, ""
		},
	}
}

// All returns every observer in the library for m.
func All(m *model.Model) []*Observer {
	return []*Observer{
		OneJobPerPartition(m),
		OneJobPerCore(m),
		ExecOnlyInWindows(m),
		SendAfterCompletion(m),
		ExactLinkDelay(m),
		MinLinkDelay(m),
		NoExecBeforeData(m),
		NoExecPastDeadline(m),
		WCETBound(m),
	}
}

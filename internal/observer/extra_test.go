package observer

import (
	"strings"
	"testing"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
)

func TestNoExecPastDeadlineFlagsLateDispatch(t *testing.T) {
	sys := flowSystem()
	m := model.MustBuild(sys)
	o := NoExecPastDeadline(m)
	s := m.Net.InitialState()
	execHi, _ := m.TaskChans(config.TaskRef{Part: 0, Task: 0}) // Hi: P=5, D=5
	tr := &nsa.Transition{Kind: nsa.BinarySync, Chan: execHi, Parts: []nsa.Part{{Aut: 0, Edge: 0}, {Aut: 1, Edge: 0}}}
	// Job 0's absolute deadline is 5; dispatch at 6 is a violation.
	if _, bad := o.Step(o.Init(), 6, tr, m.Net, s); !strings.Contains(bad, "past deadline") {
		t.Fatalf("late dispatch not flagged: %q", bad)
	}
	// Dispatch exactly at the deadline instant is tolerated (zero width).
	if _, bad := o.Step(o.Init(), 5, tr, m.Net, s); bad != "" {
		t.Fatalf("boundary dispatch flagged: %q", bad)
	}
}

func TestWCETBoundFlagsOverrun(t *testing.T) {
	sys := flowSystem()
	m := model.MustBuild(sys)
	o := WCETBound(m)
	s := m.Net.InitialState()
	execHi, preemptHi := m.TaskChans(config.TaskRef{Part: 0, Task: 0}) // Hi: C=1
	ex := &nsa.Transition{Kind: nsa.BinarySync, Chan: execHi, Parts: []nsa.Part{{Aut: 0, Edge: 0}, {Aut: 1, Edge: 0}}}
	pr := &nsa.Transition{Kind: nsa.BinarySync, Chan: preemptHi, Parts: []nsa.Part{{Aut: 0, Edge: 0}, {Aut: 1, Edge: 0}}}
	ms := o.Init()
	ms, bad := o.Step(ms, 0, ex, m.Net, s)
	if bad != "" {
		t.Fatal(bad)
	}
	// Executing for 3 ticks with WCET 1: flagged at the preemption.
	if _, bad = o.Step(ms, 3, pr, m.Net, s); !strings.Contains(bad, "> WCET") {
		t.Fatalf("overrun not flagged: %q", bad)
	}
}

func TestExecOnlyInWindowsFlagsSleepingExec(t *testing.T) {
	sys := flowSystem()
	m := model.MustBuild(sys)
	o := ExecOnlyInWindows(m)
	s := m.Net.InitialState()
	execHi, _ := m.TaskChans(config.TaskRef{Part: 0, Task: 0})
	tr := &nsa.Transition{Kind: nsa.BinarySync, Chan: execHi, Parts: []nsa.Part{{Aut: 0, Edge: 0}, {Aut: 1, Edge: 0}}}
	// No wakeup was observed: the partition is asleep.
	if _, bad := o.Step(o.Init(), 0, tr, m.Net, s); !strings.Contains(bad, "outside a window") {
		t.Fatalf("sleeping exec not flagged: %q", bad)
	}
}

func TestSendAfterCompletionFlagsSpontaneousSend(t *testing.T) {
	sys := flowSystem()
	m := model.MustBuild(sys)
	o := SendAfterCompletion(m)
	s := m.Net.InitialState()
	send := &nsa.Transition{Kind: nsa.Broadcast,
		Chan: m.SendChan(config.TaskRef{Part: 0, Task: 1}), Parts: []nsa.Part{{Aut: 0, Edge: 0}}}
	if _, bad := o.Step(o.Init(), 3, send, m.Net, s); !strings.Contains(bad, "without a completed job") {
		t.Fatalf("spontaneous send not flagged: %q", bad)
	}
}

func TestRuntimeCollectsViolations(t *testing.T) {
	sys := flowSystem()
	m := model.MustBuild(sys)
	rt := NewRuntime(OneJobPerPartition(m))
	execHi, _ := m.TaskChans(config.TaskRef{Part: 0, Task: 0})
	execLo, _ := m.TaskChans(config.TaskRef{Part: 0, Task: 1})
	s := m.Net.InitialState()
	tr1 := &nsa.Transition{Kind: nsa.BinarySync, Chan: execHi, Parts: []nsa.Part{{Aut: 0, Edge: 0}, {Aut: 1, Edge: 0}}}
	tr2 := &nsa.Transition{Kind: nsa.BinarySync, Chan: execLo, Parts: []nsa.Part{{Aut: 0, Edge: 0}, {Aut: 1, Edge: 0}}}
	rt.OnTransition(0, tr1, m.Net, s)
	rt.OnTransition(1, tr2, m.Net, s)
	if len(rt.Violations) != 1 {
		t.Fatalf("violations = %v", rt.Violations)
	}
}

package observer

import (
	"strings"
	"testing"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/mc"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/trace"
)

func flowSystem() *config.System {
	return &config.System{
		Name:      "obs",
		CoreTypes: []string{"std"},
		Cores: []config.Core{
			{Name: "c1", Type: 0, Module: 1},
			{Name: "c2", Type: 0, Module: 2},
		},
		Partitions: []config.Partition{
			{Name: "P1", Core: 0, Policy: config.FPPS,
				Tasks: []config.Task{
					{Name: "Hi", Priority: 2, WCET: []int64{1}, Period: 5, Deadline: 5},
					{Name: "Lo", Priority: 1, WCET: []int64{5}, Period: 10, Deadline: 10},
				},
				Windows: []config.Window{{Start: 0, End: 8}}},
			{Name: "P2", Core: 1, Policy: config.EDF,
				Tasks: []config.Task{
					{Name: "R", Priority: 1, WCET: []int64{2}, Period: 10, Deadline: 10},
				},
				Windows: []config.Window{{Start: 0, End: 10}}},
		},
		Messages: []config.Message{
			{Name: "m", SrcPart: 0, SrcTask: 1, DstPart: 1, DstTask: 0, MemDelay: 1, NetDelay: 3},
		},
	}
}

func TestLibrarySatisfiedOnRun(t *testing.T) {
	sys := flowSystem()
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	m := model.MustBuild(sys)
	violations, err := VerifyRun(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("violations: %v", violations)
	}
}

// TestLibrarySatisfiedOnAllRuns is the paper's observer verification: the
// "bad" locations of every observer are unreachable across all runs.
func TestLibrarySatisfiedOnAllRuns(t *testing.T) {
	m := model.MustBuild(flowSystem())
	bad, res, err := VerifyAllRuns(m, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if bad != "" {
		t.Fatalf("violation: %s", bad)
	}
	if !res.Complete {
		t.Fatal("exploration incomplete")
	}
	t.Logf("verified over %d states, %d transitions", res.States, res.Transitions)
}

// TestLibrarySatisfiedUnderOverload: the requirements must hold even for
// unschedulable configurations (deadline kills follow the spec too).
func TestLibrarySatisfiedUnderOverload(t *testing.T) {
	sys := flowSystem()
	sys.Partitions[0].Tasks[1].WCET = []int64{9} // Lo overloads its window
	m := model.MustBuild(sys)
	bad, _, err := VerifyAllRuns(m, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if bad != "" {
		t.Fatalf("violation: %s", bad)
	}
	// Sanity: it is indeed unschedulable.
	tr, _, err := model.MustBuild(sys).Simulate()
	if err != nil {
		t.Fatal(err)
	}
	a, err := trace.Analyze(sys, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedulable {
		t.Error("overloaded configuration should be unschedulable")
	}
}

// TestParametricSweep runs the observer verification across a grid of small
// parameter combinations, mirroring the paper's "observer sets each
// parameter non-deterministically" by enumeration.
func TestParametricSweep(t *testing.T) {
	policies := []config.Policy{config.FPPS, config.FPNPS, config.EDF}
	type cfg struct {
		c1, c2 int64
		d1     int64
		window int64
	}
	grid := []cfg{
		{1, 3, 4, 8},
		{2, 2, 6, 8},
		{3, 1, 8, 5},
		{4, 4, 8, 6},
	}
	for _, pol := range policies {
		for _, g := range grid {
			sys := &config.System{
				Name:      "sweep",
				CoreTypes: []string{"std"},
				Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
				Partitions: []config.Partition{
					{Name: "P1", Core: 0, Policy: pol,
						Tasks: []config.Task{
							{Name: "A", Priority: 2, WCET: []int64{g.c1}, Period: 8, Deadline: g.d1},
							{Name: "B", Priority: 1, WCET: []int64{g.c2}, Period: 8, Deadline: 8},
						},
						Windows: []config.Window{{Start: 0, End: g.window}}},
				},
			}
			if err := sys.Validate(); err != nil {
				t.Fatalf("%s %+v: %v", pol, g, err)
			}
			m := model.MustBuild(sys)
			bad, res, err := VerifyAllRuns(m, 2_000_000)
			if err != nil {
				t.Fatalf("%s %+v: %v", pol, g, err)
			}
			if bad != "" {
				t.Errorf("%s %+v: violation %s", pol, g, bad)
			}
			if !res.Complete {
				t.Errorf("%s %+v: incomplete", pol, g)
			}
		}
	}
}

// brokenSendModel wires an observer against a hand-built violating stream
// to prove observers actually reject bad behaviour.
func TestObserversDetectViolations(t *testing.T) {
	sys := flowSystem()
	m := model.MustBuild(sys)

	// Synthetic transitions: an exec of Lo while Hi executes.
	execHi, _ := m.TaskChans(config.TaskRef{Part: 0, Task: 0})
	execLo, _ := m.TaskChans(config.TaskRef{Part: 0, Task: 1})
	s := m.Net.InitialState()

	o := OneJobPerPartition(m)
	ms := o.Init()
	tr1 := &nsa.Transition{Kind: nsa.BinarySync, Chan: execHi, Parts: []nsa.Part{{Aut: 0, Edge: 0}, {Aut: 1, Edge: 0}}}
	ms, bad := o.Step(ms, 0, tr1, m.Net, s)
	if bad != "" {
		t.Fatalf("first exec flagged: %s", bad)
	}
	tr2 := &nsa.Transition{Kind: nsa.BinarySync, Chan: execLo, Parts: []nsa.Part{{Aut: 0, Edge: 0}, {Aut: 1, Edge: 0}}}
	_, bad = o.Step(ms, 1, tr2, m.Net, s)
	if !strings.Contains(bad, "while") {
		t.Fatalf("second exec not flagged: %q", bad)
	}
}

func TestExactLinkDelayDetectsEarlyDelivery(t *testing.T) {
	sys := flowSystem()
	m := model.MustBuild(sys)
	o := ExactLinkDelay(m)
	s := m.Net.InitialState()

	sendCh := m.SendChan(config.TaskRef{Part: 0, Task: 1})
	recvCh := m.ReceiveChan(0)

	ms := o.Init()
	send := &nsa.Transition{Kind: nsa.Broadcast, Chan: sendCh, Parts: []nsa.Part{{Aut: 0, Edge: 0}}}
	ms, bad := o.Step(ms, 4, send, m.Net, s)
	if bad != "" {
		t.Fatal(bad)
	}
	recv := &nsa.Transition{Kind: nsa.Broadcast, Chan: recvCh, Parts: []nsa.Part{{Aut: 0, Edge: 0}}}
	// Delivery at 5 but the network delay is 3 (cross-module): expect 7.
	_, bad = o.Step(ms, 5, recv, m.Net, s)
	if !strings.Contains(bad, "expected 7") {
		t.Fatalf("early delivery not flagged: %q", bad)
	}
}

func TestMonitorsAdapter(t *testing.T) {
	m := model.MustBuild(flowSystem())
	mons := Monitors(All(m)...)
	if len(mons) != 9 {
		t.Fatalf("monitors = %d, want 9", len(mons))
	}
	var _ []mc.Monitor = mons
}

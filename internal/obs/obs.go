// Package obs is the zero-dependency telemetry layer of the analysis
// engine: hot-path counters (Probe), phase spans (Timeline, RunReport),
// a windowed latency histogram shared by the job pool and the HTTP
// exposition, structured-logging flag helpers around log/slog, and pprof
// profiling helpers for the CLIs.
//
// The design constraint throughout is that disabled telemetry must cost
// nothing measurable inside the interpretation loop: every engine call
// site guards on a nil *Probe (one predictable branch), counters are
// plain atomics so enabling a probe never introduces a lock into the hot
// path, and span bookkeeping happens only at pipeline-phase granularity
// (a handful of timestamps per run, never per transition).
package obs

package obs

import (
	"sync"
	"time"
)

// Flight-recorder event kinds. Engine kinds are recorded from inside the
// interpretation loop (model-time stamped); service kinds from the pool
// and explorers (wall-clock stamped).
const (
	FlightInstant    uint8 = iota + 1 // time advanced: Time=new model time, Arg=delta
	FlightEdge                        // transition fired: Time=fire time, Arg=channel, Aux=first automaton
	FlightSeed                        // chooser seeded: Arg=seed
	FlightChoice                      // chooser picked: Arg=index, Aux=candidate count
	FlightFault                       // fault injected: Label=site, Arg=sequence
	FlightBreaker                     // store breaker: Arg=1 trip, 0 reset
	FlightWatchdog                    // stuck-job watchdog fired: Label=job ID, Arg=attempt
	FlightQuarantine                  // campaign/synth point quarantined: Label=point key
)

var flightKindNames = [...]string{
	0:                "?",
	FlightInstant:    "instant",
	FlightEdge:       "edge",
	FlightSeed:       "seed",
	FlightChoice:     "choice",
	FlightFault:      "fault",
	FlightBreaker:    "breaker",
	FlightWatchdog:   "watchdog",
	FlightQuarantine: "quarantine",
}

// FlightEvent is the JSON form of one recorded event, oldest-first in a
// dump. Time is model time for engine events and zero for service events
// (which carry WallNS instead).
type FlightEvent struct {
	Kind   string `json:"kind"`
	WallNS int64  `json:"wall_ns,omitempty"`
	Time   int64  `json:"time,omitempty"`
	Arg    int64  `json:"arg,omitempty"`
	Aux    int64  `json:"aux,omitempty"`
	Label  string `json:"label,omitempty"`
}

// FlightRecorder is a fixed-size ring of recent events kept purely so
// the last moments before a failure can be reconstructed: when a run
// ends in deadlock, watchdog kill, panic or injected fault, the ring is
// dumped into the diag report and the artifact store as a post-mortem.
//
// The ring is a preallocated structure of arrays and Record never
// allocates (labels are constant or preformatted strings), so an
// enabled recorder costs one uncontended lock per event; a nil
// *FlightRecorder is the disabled recorder and every method no-ops.
type FlightRecorder struct {
	mu    sync.Mutex
	n     uint64 // events ever recorded; n % cap is the next slot
	kind  []uint8
	wall  []int64
	time  []int64
	arg   []int64
	aux   []int64
	label []string
}

// DefaultFlightDepth holds roughly the last few instants of an
// industrial-scale run (a handful of edges per instant) in ~10 KiB.
const DefaultFlightDepth = 256

// NewFlightRecorder returns a recorder keeping the most recent depth
// events (<=0 selects DefaultFlightDepth).
func NewFlightRecorder(depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &FlightRecorder{
		kind:  make([]uint8, depth),
		wall:  make([]int64, depth),
		time:  make([]int64, depth),
		arg:   make([]int64, depth),
		aux:   make([]int64, depth),
		label: make([]string, depth),
	}
}

// Record stores one engine event (no wall-clock stamp). Nil-safe.
func (f *FlightRecorder) Record(kind uint8, t, arg, aux int64, label string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	slot := int(f.n % uint64(len(f.kind)))
	f.n++
	f.kind[slot] = kind
	f.wall[slot] = 0
	f.time[slot] = t
	f.arg[slot] = arg
	f.aux[slot] = aux
	f.label[slot] = label
	f.mu.Unlock()
}

// RecordWall stores one service event stamped with the current wall
// clock. Nil-safe.
func (f *FlightRecorder) RecordWall(kind uint8, arg, aux int64, label string) {
	if f == nil {
		return
	}
	now := time.Now().UnixNano()
	f.mu.Lock()
	slot := int(f.n % uint64(len(f.kind)))
	f.n++
	f.kind[slot] = kind
	f.wall[slot] = now
	f.time[slot] = 0
	f.arg[slot] = arg
	f.aux[slot] = aux
	f.label[slot] = label
	f.mu.Unlock()
}

// Reset clears the ring for reuse by the next run. Nil-safe.
func (f *FlightRecorder) Reset() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.n = 0
	clear(f.label) // release any retained strings
	f.mu.Unlock()
}

// Len returns the number of live events in the ring.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.n > uint64(len(f.kind)) {
		return len(f.kind)
	}
	return int(f.n)
}

// Snapshot copies the live events out oldest-first. Nil-safe (nil in,
// nil out).
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	depth := uint64(len(f.kind))
	live := f.n
	first := uint64(0)
	if live > depth {
		live = depth
		first = f.n % depth
	}
	out := make([]FlightEvent, 0, live)
	for i := uint64(0); i < live; i++ {
		slot := int((first + i) % depth)
		k := f.kind[slot]
		name := "?"
		if int(k) < len(flightKindNames) {
			name = flightKindNames[k]
		}
		out = append(out, FlightEvent{
			Kind:   name,
			WallNS: f.wall[slot],
			Time:   f.time[slot],
			Arg:    f.arg[slot],
			Aux:    f.aux[slot],
			Label:  f.label[slot],
		})
	}
	return out
}

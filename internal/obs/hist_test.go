package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a histogram's rotation deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func withClock(h *Histogram, c *fakeClock) *Histogram {
	h.now = c.now
	h.last = c.now()
	return h
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(0, 1, nil) // cumulative, no rotation
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond) // bucket (0.8ms, 1.6ms]
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 110 {
		t.Fatalf("Count = %d, want 110", s.Count)
	}
	if want := 100*time.Millisecond + 10*100*time.Millisecond; s.Sum != want {
		t.Errorf("Sum = %v, want %v", s.Sum, want)
	}
	p50 := h.Quantile(0.50)
	if p50 < 800*time.Microsecond || p50 > 1600*time.Microsecond {
		t.Errorf("p50 = %v, want within the ~1ms bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 50*time.Millisecond || p99 > 205*time.Millisecond {
		t.Errorf("p99 = %v, want within the ~100ms bucket", p99)
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Error("quantiles not monotone")
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if s := nilH.Snapshot(); s.Count != 0 {
		t.Errorf("nil Snapshot count = %d", s.Count)
	}
	h := NewHistogram(time.Minute, 4, nil)
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramWindowRotation(t *testing.T) {
	clk := newFakeClock()
	h := withClock(NewHistogram(4*time.Second, 4, nil), clk)
	h.Observe(time.Millisecond)
	if s := h.Snapshot(); s.Count != 1 {
		t.Fatalf("Count = %d, want 1", s.Count)
	}
	// Advance past one sub-window: the old observation survives (3 of 4
	// sub-windows still live).
	clk.advance(1100 * time.Millisecond)
	h.Observe(10 * time.Millisecond)
	if s := h.Snapshot(); s.Count != 2 {
		t.Fatalf("after one rotation Count = %d, want 2", s.Count)
	}
	// Advance past the whole window: everything expires.
	clk.advance(5 * time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("after full window Count = %d, want 0", s.Count)
	}
	h.Observe(time.Second)
	if s := h.Snapshot(); s.Count != 1 {
		t.Errorf("fresh observation Count = %d, want 1", s.Count)
	}
}

func TestHistogramCumulativeForm(t *testing.T) {
	h := NewHistogram(0, 1, []time.Duration{time.Millisecond, time.Second})
	h.Observe(time.Microsecond)       // bucket 0
	h.Observe(500 * time.Millisecond) // bucket 1
	h.Observe(time.Hour)              // +Inf bucket
	s := h.Snapshot()
	if len(s.Cumulative) != 3 {
		t.Fatalf("len(Cumulative) = %d, want 3", len(s.Cumulative))
	}
	want := []uint64{1, 2, 3}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Errorf("Cumulative[%d] = %d, want %d", i, s.Cumulative[i], w)
		}
	}
	if s.Cumulative[2] != s.Count {
		t.Errorf("+Inf bucket %d != Count %d", s.Cumulative[2], s.Count)
	}
}

// Quantile estimation must be race-free and sane while concurrent
// goroutines observe and the window rotates underneath (run with -race).
func TestHistogramConcurrentRecordRotate(t *testing.T) {
	h := NewHistogram(10*time.Millisecond, 4, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := time.Duration(g+1) * time.Millisecond
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(d)
			}
		}(g)
	}
	deadline := time.Now().Add(60 * time.Millisecond)
	for time.Now().Before(deadline) {
		// Rotation happens inside these calls as sub-windows expire.
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			if got := h.Quantile(q); got < 0 || got > time.Second {
				t.Fatalf("Quantile(%v) = %v out of range", q, got)
			}
		}
		s := h.Snapshot()
		if s.Count > 0 && s.Cumulative[len(s.Cumulative)-1] != s.Count {
			t.Fatalf("+Inf cumulative %d != count %d", s.Cumulative[len(s.Cumulative)-1], s.Count)
		}
	}
	close(stop)
	wg.Wait()
}

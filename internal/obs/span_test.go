package obs

import (
	"encoding/json"
	"testing"
	"time"
)

func TestTimelineNesting(t *testing.T) {
	tl := NewTimeline()
	outer := tl.Start(PhaseBuild)
	inner := tl.Start(PhaseIndex)
	inner.End()
	outer.End()
	after := tl.Start(PhaseInterpret)
	after.End()

	spans := tl.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != PhaseBuild || spans[0].Depth != 0 {
		t.Errorf("outer span = %+v, want depth 0", spans[0])
	}
	if spans[1].Name != PhaseIndex || spans[1].Depth != 1 {
		t.Errorf("inner span = %+v, want depth 1", spans[1])
	}
	if spans[2].Name != PhaseInterpret || spans[2].Depth != 0 {
		t.Errorf("post-nesting span = %+v, want depth 0 again", spans[2])
	}
	for i, sp := range spans {
		if sp.DurNS < 0 || sp.StartNS < 0 {
			t.Errorf("span %d has negative timing: %+v", i, sp)
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tl := NewTimeline()
	sp := tl.Start(PhaseParse)
	d1 := sp.End()
	time.Sleep(time.Millisecond)
	if d2 := sp.End(); d2 != 0 {
		t.Errorf("second End = %v, want 0", d2)
	}
	if got := time.Duration(tl.Spans()[0].DurNS); got != d1 {
		t.Errorf("recorded duration %v, want first End %v", got, d1)
	}
}

func TestNilTimelineAndSpan(t *testing.T) {
	var tl *Timeline
	sp := tl.Start(PhaseParse)
	if sp.End() != 0 {
		t.Error("nil span End should be 0")
	}
	if tl.Spans() != nil {
		t.Error("nil timeline Spans should be nil")
	}
	r := tl.Report("tool", nil)
	if r == nil || len(r.Phases) != 0 || r.TotalNS != 0 {
		t.Errorf("nil timeline Report = %+v", r)
	}
}

func TestReportPhaseDurAndJSON(t *testing.T) {
	tl := NewTimeline()
	tl.Start(PhaseBuild).End()
	tl.Start(PhaseInterpret).End()
	p := &Probe{}
	p.Steps.Add(10)
	p.Actions.Add(7)
	p.Delays.Add(3)
	r := tl.Report("test", p)
	if r.Tool != "test" || len(r.Phases) != 2 {
		t.Fatalf("report = %+v", r)
	}
	if r.Counters.Steps != 10 || r.Counters.Actions+r.Counters.Delays != r.Counters.Steps {
		t.Errorf("counters = %+v", r.Counters)
	}
	if r.PhaseDur(PhaseBuild) != time.Duration(r.Phases[0].DurNS) {
		t.Errorf("PhaseDur(build) = %v", r.PhaseDur(PhaseBuild))
	}
	if r.PhaseDur("missing") != 0 {
		t.Error("PhaseDur of absent phase should be 0")
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters != r.Counters || len(back.Phases) != len(r.Phases) {
		t.Errorf("JSON round trip mismatch: %+v vs %+v", back, *r)
	}
}

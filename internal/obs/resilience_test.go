package obs

import (
	"sync"
	"testing"
)

func TestResilienceNilSafe(t *testing.T) {
	var r *Resilience
	if got := r.Snapshot(); got != (ResilienceCounters{}) {
		t.Fatalf("nil snapshot %+v", got)
	}
	r.SetDegraded(true) // must not panic
}

func TestResilienceSnapshotAndDegraded(t *testing.T) {
	r := &Resilience{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.StoreRetries.Add(1)
				r.PointsQuarantined.Add(1)
			}
		}()
	}
	wg.Wait()
	r.BreakerTrips.Add(2)
	r.SetDegraded(true)
	s := r.Snapshot()
	if s.StoreRetries != 800 || s.PointsQuarantined != 800 || s.BreakerTrips != 2 || s.Degraded != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	r.SetDegraded(false)
	if r.Snapshot().Degraded != 0 {
		t.Fatal("degraded gauge did not clear")
	}
}

package obs

import "sync/atomic"

// Resilience collects the self-healing counters of the service runtime:
// what the fault-containment machinery (internal/fault retry/breaker, the
// jobs watchdog, campaign quarantine) absorbed so the caller never saw
// it. One Resilience is shared by the jobs pool and the campaign engine
// of a process; cmd/saserve exposes it as the saserve_resilience_* metric
// families and cmd/chaos folds it into its soak report.
//
// Like Probe, all fields are atomics and a nil *Resilience is the
// disabled collector: every method returns after a nil check.
//
//   - StoreRetries: persistent-store operation retries that recovered (or
//     exhausted) a transient failure.
//   - BreakerTrips / BreakerResets: disk-tier circuit breaker openings
//     and recoveries; BreakerShortCircuits counts operations skipped
//     while the tier was degraded.
//   - WatchdogRequeues: wedged running jobs deadlined and requeued.
//   - PanicsRecovered: worker panics converted into failed jobs.
//   - PointRetries: campaign point evaluations retried after a failed
//     attempt; PointsQuarantined counts points recorded failed after the
//     retry budget was exhausted.
//   - Degraded: 0/1 gauge — the disk tier is currently tripped into
//     memory-only mode (mirrors /readyz).
type Resilience struct {
	StoreRetries         atomic.Int64
	BreakerTrips         atomic.Int64
	BreakerResets        atomic.Int64
	BreakerShortCircuits atomic.Int64
	WatchdogRequeues     atomic.Int64
	PanicsRecovered      atomic.Int64
	PointRetries         atomic.Int64
	PointsQuarantined    atomic.Int64
	Degraded             atomic.Int64
}

// ResilienceCounters is the plain snapshot of a Resilience, the JSON wire
// form used by the chaos report and the pool metrics snapshot.
type ResilienceCounters struct {
	StoreRetries         int64 `json:"store_retries"`
	BreakerTrips         int64 `json:"breaker_trips"`
	BreakerResets        int64 `json:"breaker_resets"`
	BreakerShortCircuits int64 `json:"breaker_short_circuits"`
	WatchdogRequeues     int64 `json:"watchdog_requeues"`
	PanicsRecovered      int64 `json:"panics_recovered"`
	PointRetries         int64 `json:"point_retries"`
	PointsQuarantined    int64 `json:"points_quarantined"`
	Degraded             int64 `json:"degraded"`
}

// Snapshot returns a copy of the counters; each field is loaded
// atomically. Nil-safe: a nil collector snapshots to zeroes.
func (r *Resilience) Snapshot() ResilienceCounters {
	if r == nil {
		return ResilienceCounters{}
	}
	return ResilienceCounters{
		StoreRetries:         r.StoreRetries.Load(),
		BreakerTrips:         r.BreakerTrips.Load(),
		BreakerResets:        r.BreakerResets.Load(),
		BreakerShortCircuits: r.BreakerShortCircuits.Load(),
		WatchdogRequeues:     r.WatchdogRequeues.Load(),
		PanicsRecovered:      r.PanicsRecovered.Load(),
		PointRetries:         r.PointRetries.Load(),
		PointsQuarantined:    r.PointsQuarantined.Load(),
		Degraded:             r.Degraded.Load(),
	}
}

// SetDegraded flips the degraded-mode gauge. Nil-safe no-op.
func (r *Resilience) SetDegraded(on bool) {
	if r == nil {
		return
	}
	if on {
		r.Degraded.Store(1)
	} else {
		r.Degraded.Store(0)
	}
}

package obs

import "sync/atomic"

// Probe collects the hot-path counters of engine interpretation runs.
// A nil *Probe is the disabled probe: instrumented call sites guard with
// a nil check, so the disabled path costs one predictable branch and no
// memory traffic. A non-nil Probe may be shared by concurrent runs (the
// job pool aggregates every worker's runs into one); all fields are
// atomics, so bumps from parallel engines never race and never contend
// on a lock.
//
// Counter semantics (all monotonically increasing except DirtyMax):
//
//   - Steps, Actions, Delays: transitions taken. Steps is always
//     Actions+Delays; the redundancy is deliberate so exposition and
//     tests can check internal consistency.
//   - SyncInternal, SyncBinary, SyncBroadcast: action transitions by
//     synchronization kind; their sum equals Actions.
//   - GuardEvals: guard evaluations on the indexed interpretation paths
//     (engine runtime recomputation and Enumerator scans), split into
//     GuardCompiled (compiled expression closure or cheaper), GuardBytecode
//     (the bytecode and inlined-comparison subset of GuardCompiled, compiled
//     backend only) and GuardOpaque (interface dispatch through the
//     environment).
//   - EnabledCalls: enabled-set queries. Recomputes counts automata whose
//     cached enabled sets had to be rebuilt (dirty); CacheReuses counts
//     automata whose cached sets were still valid. DirtyTotal sums the
//     dirty-set size over all queries (DirtyTotal/EnabledCalls is the
//     mean); DirtyMax is the peak dirty-set size observed.
//   - HeapPushes: deadline-heap insertions (invariant expiry and guard
//     wake-up heaps). HeapPops counts stale entries lazily dropped when
//     they surfaced at the heap top; HeapStale counts stale entries
//     removed by wholesale compaction.
//   - DeadlineRecomputes: per-automaton deadline refreshes on the compiled
//     backend's deadline-dirty plane. EnabledUnchanged counts enabled-set
//     recomputations that produced an identical set (surgery skipped).
//     FirstFast counts steps served by the first-transition fast path
//     without materializing the candidate list.
type Probe struct {
	Steps   atomic.Int64
	Actions atomic.Int64
	Delays  atomic.Int64

	SyncInternal  atomic.Int64
	SyncBinary    atomic.Int64
	SyncBroadcast atomic.Int64

	GuardEvals    atomic.Int64
	GuardCompiled atomic.Int64
	GuardBytecode atomic.Int64
	GuardOpaque   atomic.Int64

	EnabledCalls atomic.Int64
	Recomputes   atomic.Int64
	CacheReuses  atomic.Int64
	DirtyTotal   atomic.Int64
	DirtyMax     atomic.Int64

	HeapPushes atomic.Int64
	HeapPops   atomic.Int64
	HeapStale  atomic.Int64

	DeadlineRecomputes atomic.Int64
	EnabledUnchanged   atomic.Int64
	FirstFast          atomic.Int64
}

// Counters is a plain snapshot of a Probe, the JSON wire form embedded in
// RunReport, the benchtable report and the /metrics exposition.
type Counters struct {
	Steps   int64 `json:"steps"`
	Actions int64 `json:"actions"`
	Delays  int64 `json:"delays"`

	SyncInternal  int64 `json:"sync_internal"`
	SyncBinary    int64 `json:"sync_binary"`
	SyncBroadcast int64 `json:"sync_broadcast"`

	GuardEvals    int64 `json:"guard_evals"`
	GuardCompiled int64 `json:"guard_compiled"`
	GuardBytecode int64 `json:"guard_bytecode"`
	GuardOpaque   int64 `json:"guard_opaque"`

	EnabledCalls int64 `json:"enabled_calls"`
	Recomputes   int64 `json:"recomputes"`
	CacheReuses  int64 `json:"cache_reuses"`
	DirtyTotal   int64 `json:"dirty_total"`
	DirtyMax     int64 `json:"dirty_max"`

	HeapPushes int64 `json:"heap_pushes"`
	HeapPops   int64 `json:"heap_pops"`
	HeapStale  int64 `json:"heap_stale"`

	DeadlineRecomputes int64 `json:"deadline_recomputes"`
	EnabledUnchanged   int64 `json:"enabled_unchanged"`
	FirstFast          int64 `json:"first_fast"`
}

// Snapshot returns a consistent-enough copy of the counters: each field
// is loaded atomically, but concurrent writers may land between loads.
// Nil-safe: a nil probe snapshots to the zero Counters.
func (p *Probe) Snapshot() Counters {
	if p == nil {
		return Counters{}
	}
	return Counters{
		Steps:         p.Steps.Load(),
		Actions:       p.Actions.Load(),
		Delays:        p.Delays.Load(),
		SyncInternal:  p.SyncInternal.Load(),
		SyncBinary:    p.SyncBinary.Load(),
		SyncBroadcast: p.SyncBroadcast.Load(),
		GuardEvals:         p.GuardEvals.Load(),
		GuardCompiled:      p.GuardCompiled.Load(),
		GuardBytecode:      p.GuardBytecode.Load(),
		GuardOpaque:        p.GuardOpaque.Load(),
		EnabledCalls:       p.EnabledCalls.Load(),
		Recomputes:         p.Recomputes.Load(),
		CacheReuses:        p.CacheReuses.Load(),
		DirtyTotal:         p.DirtyTotal.Load(),
		DirtyMax:           p.DirtyMax.Load(),
		HeapPushes:         p.HeapPushes.Load(),
		HeapPops:           p.HeapPops.Load(),
		HeapStale:          p.HeapStale.Load(),
		DeadlineRecomputes: p.DeadlineRecomputes.Load(),
		EnabledUnchanged:   p.EnabledUnchanged.Load(),
		FirstFast:          p.FirstFast.Load(),
	}
}

// Merge adds a snapshot into the probe; DirtyMax merges as a maximum.
// Used by the job pool to fold per-run counters into the service-wide
// aggregate. Nil-safe no-op.
func (p *Probe) Merge(c Counters) {
	if p == nil {
		return
	}
	p.Steps.Add(c.Steps)
	p.Actions.Add(c.Actions)
	p.Delays.Add(c.Delays)
	p.SyncInternal.Add(c.SyncInternal)
	p.SyncBinary.Add(c.SyncBinary)
	p.SyncBroadcast.Add(c.SyncBroadcast)
	p.GuardEvals.Add(c.GuardEvals)
	p.GuardCompiled.Add(c.GuardCompiled)
	p.GuardBytecode.Add(c.GuardBytecode)
	p.GuardOpaque.Add(c.GuardOpaque)
	p.EnabledCalls.Add(c.EnabledCalls)
	p.Recomputes.Add(c.Recomputes)
	p.CacheReuses.Add(c.CacheReuses)
	p.DirtyTotal.Add(c.DirtyTotal)
	p.RaiseDirtyMax(c.DirtyMax)
	p.HeapPushes.Add(c.HeapPushes)
	p.HeapPops.Add(c.HeapPops)
	p.HeapStale.Add(c.HeapStale)
	p.DeadlineRecomputes.Add(c.DeadlineRecomputes)
	p.EnabledUnchanged.Add(c.EnabledUnchanged)
	p.FirstFast.Add(c.FirstFast)
}

// Reset zeroes every counter. Persistent prepared engines share one probe
// across Reset+Run cycles (the runtimes capture the probe pointer at
// construction), so per-run telemetry resets it between runs. Not atomic
// as a whole: reset only between runs, never concurrently with one.
// Nil-safe no-op.
func (p *Probe) Reset() {
	if p == nil {
		return
	}
	p.Steps.Store(0)
	p.Actions.Store(0)
	p.Delays.Store(0)
	p.SyncInternal.Store(0)
	p.SyncBinary.Store(0)
	p.SyncBroadcast.Store(0)
	p.GuardEvals.Store(0)
	p.GuardCompiled.Store(0)
	p.GuardBytecode.Store(0)
	p.GuardOpaque.Store(0)
	p.EnabledCalls.Store(0)
	p.Recomputes.Store(0)
	p.CacheReuses.Store(0)
	p.DirtyTotal.Store(0)
	p.DirtyMax.Store(0)
	p.HeapPushes.Store(0)
	p.HeapPops.Store(0)
	p.HeapStale.Store(0)
	p.DeadlineRecomputes.Store(0)
	p.EnabledUnchanged.Store(0)
	p.FirstFast.Store(0)
}

// RaiseDirtyMax lifts DirtyMax to at least v (CAS loop; lock-free).
// Nil-safe no-op.
func (p *Probe) RaiseDirtyMax(v int64) {
	if p == nil {
		return
	}
	for {
		cur := p.DirtyMax.Load()
		if v <= cur || p.DirtyMax.CompareAndSwap(cur, v) {
			return
		}
	}
}

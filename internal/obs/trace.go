package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// TraceContext identifies one request across layers: a 128-bit trace ID
// shared by every span of the request and a 64-bit span ID naming the
// current operation. The wire form is the W3C traceparent header
// ("00-<32 hex trace>-<16 hex span>-01"), so external clients and
// sidecars interoperate without any dependency on their SDKs.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
}

// Valid reports whether both IDs are non-zero, per the W3C rules.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// TraceString returns the 32-hex-digit trace ID.
func (tc TraceContext) TraceString() string { return hex.EncodeToString(tc.TraceID[:]) }

// SpanString returns the 16-hex-digit span ID.
func (tc TraceContext) SpanString() string { return hex.EncodeToString(tc.SpanID[:]) }

// Traceparent renders the context as a W3C traceparent header value with
// the sampled flag set.
func (tc TraceContext) Traceparent() string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], tc.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], tc.SpanID[:])
	b[52], b[53], b[54] = '-', '0', '1'
	return string(b[:])
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// version byte (per spec, future versions are forward-compatible for the
// fixed prefix) and ignores the flags.
func ParseTraceparent(s string) (TraceContext, bool) {
	var tc TraceContext
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, false
	}
	if s[0] == 'f' && s[1] == 'f' { // version 0xff is forbidden
		return tc, false
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(s[3:35])); err != nil {
		return TraceContext{}, false
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(s[36:52])); err != nil {
		return TraceContext{}, false
	}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// NewTrace mints a fresh root context: new trace ID, new span ID.
func NewTrace() TraceContext {
	var tc TraceContext
	fillRand(tc.TraceID[:])
	fillRand(tc.SpanID[:])
	return tc
}

// Child derives a context in the same trace with a fresh span ID; the
// caller records the new span with the old SpanID as parent.
func (tc TraceContext) Child() TraceContext {
	c := TraceContext{TraceID: tc.TraceID}
	fillRand(c.SpanID[:])
	return c
}

var randSeq uint64 // fallback counter if the system entropy source fails
var randSeqMu sync.Mutex

func fillRand(b []byte) {
	if _, err := rand.Read(b); err != nil {
		randSeqMu.Lock()
		randSeq++
		n := randSeq
		randSeqMu.Unlock()
		for i := range b {
			b[i] = byte(n >> (8 * (uint(i) % 8)))
		}
		if len(b) > 0 && b[0] == 0 {
			b[0] = 1
		}
	}
}

// SpanRec is the JSON form of one recorded span.
type SpanRec struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	Detail   string `json:"detail,omitempty"`
	StartNS  int64  `json:"start_ns"`
	DurNS    int64  `json:"dur_ns"`
}

// SpanNode is a span with its children, for the /v1/traces tree form.
type SpanNode struct {
	SpanRec
	Children []*SpanNode `json:"children,omitempty"`
}

// Tracer is the bounded in-memory span collector: a preallocated
// structure-of-arrays ring that newer spans overwrite oldest-first.
// Record is allocation-free (callers pass constant or preformatted
// strings; IDs are stored as raw words, hex-encoded only on read), so an
// enabled tracer costs one uncontended lock plus a few stores per span.
// A nil *Tracer is the disabled tracer: every method is a no-op.
type Tracer struct {
	mu      sync.Mutex
	n       uint64 // spans ever recorded; n % cap is the next slot
	dropped uint64 // spans overwritten before being read

	traceHi []uint64
	traceLo []uint64
	span    []uint64
	parent  []uint64
	name    []string
	detail  []string
	start   []int64 // unix nanoseconds
	dur     []int64

	export io.Writer // optional JSONL sink; nil disables
}

// DefaultTraceSpans is the default collector capacity: at ~100 bytes per
// slot it bounds the collector under half a MiB while holding the spans
// of several hundred recent jobs.
const DefaultTraceSpans = 4096

// NewTracer returns a collector holding the most recent capacity spans
// (<=0 selects DefaultTraceSpans). A non-nil export receives every span
// as one JSON line at record time (file sink for offline analysis).
func NewTracer(capacity int, export io.Writer) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceSpans
	}
	return &Tracer{
		traceHi: make([]uint64, capacity),
		traceLo: make([]uint64, capacity),
		span:    make([]uint64, capacity),
		parent:  make([]uint64, capacity),
		name:    make([]string, capacity),
		detail:  make([]string, capacity),
		start:   make([]int64, capacity),
		dur:     make([]int64, capacity),
		export:  export,
	}
}

// Record stores one completed span. parent is the enclosing span's ID
// (zero for a root span). Nil-safe; invalid contexts are dropped.
func (t *Tracer) Record(tc TraceContext, parent [8]byte, name, detail string, startNS, durNS int64) {
	if t == nil || !tc.Valid() {
		return
	}
	hi := binary.BigEndian.Uint64(tc.TraceID[:8])
	lo := binary.BigEndian.Uint64(tc.TraceID[8:])
	sp := binary.BigEndian.Uint64(tc.SpanID[:])
	par := binary.BigEndian.Uint64(parent[:])
	t.mu.Lock()
	slot := int(t.n % uint64(len(t.span)))
	if t.n >= uint64(len(t.span)) {
		t.dropped++
	}
	t.n++
	t.traceHi[slot] = hi
	t.traceLo[slot] = lo
	t.span[slot] = sp
	t.parent[slot] = par
	t.name[slot] = name
	t.detail[slot] = detail
	t.start[slot] = startNS
	t.dur[slot] = durNS
	w := t.export
	t.mu.Unlock()
	if w != nil {
		rec := spanRecAt(hi, lo, sp, par, name, detail, startNS, durNS)
		if b, err := json.Marshal(rec); err == nil {
			b = append(b, '\n')
			w.Write(b)
		}
	}
}

func spanRecAt(hi, lo, sp, par uint64, name, detail string, startNS, durNS int64) SpanRec {
	var id [16]byte
	binary.BigEndian.PutUint64(id[:8], hi)
	binary.BigEndian.PutUint64(id[8:], lo)
	var sb, pb [8]byte
	binary.BigEndian.PutUint64(sb[:], sp)
	binary.BigEndian.PutUint64(pb[:], par)
	rec := SpanRec{
		TraceID: hex.EncodeToString(id[:]),
		SpanID:  hex.EncodeToString(sb[:]),
		Name:    name,
		Detail:  detail,
		StartNS: startNS,
		DurNS:   durNS,
	}
	if par != 0 {
		rec.ParentID = hex.EncodeToString(pb[:])
	}
	return rec
}

// Stats returns the total spans recorded and the number overwritten
// before they could be read (ring wrap).
func (t *Tracer) Stats() (recorded, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n, t.dropped
}

// Trace returns every live span of the trace identified by the 32-hex
// trace ID, sorted by start time. Nil when unknown or the ID is invalid.
func (t *Tracer) Trace(idHex string) []SpanRec {
	if t == nil {
		return nil
	}
	var id [16]byte
	if len(idHex) != 32 {
		return nil
	}
	if _, err := hex.Decode(id[:], []byte(idHex)); err != nil {
		return nil
	}
	hi := binary.BigEndian.Uint64(id[:8])
	lo := binary.BigEndian.Uint64(id[8:])
	t.mu.Lock()
	defer t.mu.Unlock()
	live := int(t.n)
	if live > len(t.span) {
		live = len(t.span)
	}
	var out []SpanRec
	for i := 0; i < live; i++ {
		if t.traceHi[i] == hi && t.traceLo[i] == lo {
			out = append(out, spanRecAt(hi, lo, t.span[i], t.parent[i], t.name[i], t.detail[i], t.start[i], t.dur[i]))
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].StartNS < out[b].StartNS })
	return out
}

// SpanTree reassembles flat spans into parent→child trees. Spans whose
// parent is absent (dropped by ring wrap, or still open) are promoted to
// roots, so a partial trace still renders. Children sort by start time.
func SpanTree(spans []SpanRec) []*SpanNode {
	nodes := make(map[string]*SpanNode, len(spans))
	for i := range spans {
		nodes[spans[i].SpanID] = &SpanNode{SpanRec: spans[i]}
	}
	var roots []*SpanNode
	for i := range spans {
		n := nodes[spans[i].SpanID]
		if n.ParentID != "" {
			if p, ok := nodes[n.ParentID]; ok && p != n {
				p.Children = append(p.Children, n)
				continue
			}
		}
		roots = append(roots, n)
	}
	var sortKids func(n *SpanNode)
	sortKids = func(n *SpanNode) {
		sort.Slice(n.Children, func(a, b int) bool { return n.Children[a].StartNS < n.Children[b].StartNS })
		for _, c := range n.Children {
			sortKids(c)
		}
	}
	sort.Slice(roots, func(a, b int) bool { return roots[a].StartNS < roots[b].StartNS })
	for _, r := range roots {
		sortKids(r)
	}
	return roots
}

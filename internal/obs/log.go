package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// NewLogger builds a slog.Logger writing to w at the given level
// ("debug", "info", "warn", "error") and format ("text", "json").
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text, json)", format)
	}
}

// LogFlags registers the shared -log-level and -log-format flags on the
// default flag set and returns a function that, once flag.Parse has run,
// builds the logger (stderr), installs it as the slog default and
// returns it. A flag error is reported on stderr and falls back to the
// info-level text logger, so misconfigured logging never aborts an
// analysis.
func LogFlags() func() *slog.Logger {
	return LogFlagsFor(flag.CommandLine)
}

// LogFlagsFor is LogFlags on an explicit flag set, for subcommand-style
// tools that parse their own sets.
func LogFlagsFor(fs *flag.FlagSet) func() *slog.Logger {
	level := fs.String("log-level", "info", "log verbosity: debug, info, warn, error")
	format := fs.String("log-format", "text", "log output format: text, json")
	return func() *slog.Logger {
		log, err := NewLogger(os.Stderr, *level, *format)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			log = slog.New(slog.NewTextHandler(os.Stderr, nil))
		}
		slog.SetDefault(log)
		return log
	}
}

package obs

import (
	"sync"
	"time"
)

// DefaultHistBounds are the exponential bucket upper bounds used for run
// and phase latencies: 100µs doubling up to ~1.7 minutes, with an
// implicit +Inf bucket above. Analysis runs span five orders of
// magnitude (microsecond XTA toys to minute-long industrial sweeps), so
// doubling buckets keep the relative quantile error bounded at ~2× worst
// case while the whole histogram stays 22 counters wide.
func DefaultHistBounds() []time.Duration {
	bounds := make([]time.Duration, 0, 21)
	for d := 100 * time.Microsecond; d <= 105*time.Second; d *= 2 {
		bounds = append(bounds, d)
	}
	return bounds
}

// Histogram is a sliding-window latency histogram: observations land in
// fixed exponential buckets inside the current sub-window, and the
// window of the last numWindows sub-windows rotates as time passes, so
// quantiles and rates reflect recent behaviour instead of the whole
// process lifetime. This replaces the old fixed-size latency ring in the
// job metrics (which sorted a sample on every snapshot and silently
// mixed ancient runs with recent ones) and doubles as the Prometheus
// histogram backing for per-phase latencies.
//
// It is mutex-guarded: observations happen at job/phase completion
// (thousands per second at most), never inside the interpretation loop.
type Histogram struct {
	mu     sync.Mutex
	bounds []time.Duration // bucket i counts d <= bounds[i]; +Inf implicit

	win    [][]uint64 // [window][bucket] counts, last bucket is +Inf
	sums   []time.Duration
	counts []uint64

	cur  int // index of the current sub-window
	last time.Time
	step time.Duration // sub-window length

	now func() time.Time // injectable for tests
}

// NewHistogram returns a histogram whose quantiles cover the most recent
// `window` of time, tracked in numWindows rotating sub-windows (more
// sub-windows = smoother expiry). A zero window disables rotation, making
// the histogram cumulative since creation.
func NewHistogram(window time.Duration, numWindows int, bounds []time.Duration) *Histogram {
	if numWindows < 1 {
		numWindows = 1
	}
	if len(bounds) == 0 {
		bounds = DefaultHistBounds()
	}
	h := &Histogram{
		bounds: bounds,
		win:    make([][]uint64, numWindows),
		sums:   make([]time.Duration, numWindows),
		counts: make([]uint64, numWindows),
		now:    time.Now,
	}
	for i := range h.win {
		h.win[i] = make([]uint64, len(bounds)+1)
	}
	if window > 0 {
		h.step = window / time.Duration(numWindows)
		if h.step <= 0 {
			h.step = time.Nanosecond
		}
	}
	h.last = h.now()
	return h
}

// rotate advances the current sub-window pointer, clearing every
// sub-window that expired since the last call. Callers hold h.mu.
func (h *Histogram) rotate() {
	if h.step == 0 {
		return
	}
	elapsed := h.now().Sub(h.last)
	if elapsed < h.step {
		return
	}
	steps := int(elapsed / h.step)
	if steps > len(h.win) {
		steps = len(h.win)
	}
	for i := 0; i < steps; i++ {
		h.cur = (h.cur + 1) % len(h.win)
		clear(h.win[h.cur])
		h.sums[h.cur] = 0
		h.counts[h.cur] = 0
	}
	h.last = h.last.Add(time.Duration(steps) * h.step)
	if h.now().Sub(h.last) >= time.Duration(len(h.win))*h.step {
		h.last = h.now() // fell far behind; re-anchor
	}
}

// bucket returns the index of the bucket d falls in (binary search; the
// bound slice is sorted ascending).
func (h *Histogram) bucket(d time.Duration) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if d <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // == len(bounds) means +Inf
}

// Observe records one duration. Nil-safe no-op.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.rotate()
	h.win[h.cur][h.bucket(d)]++
	h.sums[h.cur] += d
	h.counts[h.cur]++
	h.mu.Unlock()
}

// HistSnapshot is a merged view over the window: cumulative bucket counts
// in Prometheus `le` form plus total count and sum.
type HistSnapshot struct {
	// Bounds[i] is the upper bound of Cumulative[i]; the final entry of
	// Cumulative (one longer than Bounds) is the +Inf count == Count.
	Bounds     []time.Duration
	Cumulative []uint64
	Count      uint64
	Sum        time.Duration
}

// Snapshot merges the live sub-windows into cumulative bucket counts.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rotate()
	s := HistSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]uint64, len(h.bounds)+1),
	}
	for w := range h.win {
		for b, c := range h.win[w] {
			s.Cumulative[b] += c
		}
		s.Count += h.counts[w]
		s.Sum += h.sums[w]
	}
	for b := 1; b < len(s.Cumulative); b++ {
		s.Cumulative[b] += s.Cumulative[b-1]
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) over the window by
// linear interpolation inside the bucket holding the target rank. It
// returns 0 when the window is empty. The error is bounded by the bucket
// width (≤2× with the default doubling bounds).
func (h *Histogram) Quantile(q float64) time.Duration {
	s := h.Snapshot()
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var below uint64
	for b, cum := range s.Cumulative {
		if float64(cum) >= rank {
			var lo time.Duration
			if b > 0 {
				lo = s.Bounds[b-1]
			}
			hi := 2 * lo // +Inf bucket: extrapolate one doubling
			if b < len(s.Bounds) {
				hi = s.Bounds[b]
			}
			inBucket := cum - below
			if inBucket == 0 {
				return hi
			}
			frac := (rank - float64(below)) / float64(inBucket)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		below = cum
	}
	return s.Bounds[len(s.Bounds)-1]
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := NewTrace()
	if !tc.Valid() {
		t.Fatal("NewTrace returned invalid context")
	}
	hdr := tc.Traceparent()
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("bad traceparent form %q", hdr)
	}
	got, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) failed", hdr)
	}
	if got != tc {
		t.Fatalf("round trip mismatch: %v != %v", got, tc)
	}
	child := tc.Child()
	if child.TraceID != tc.TraceID {
		t.Fatal("Child changed trace ID")
	}
	if child.SpanID == tc.SpanID {
		t.Fatal("Child kept span ID")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := NewTrace().Traceparent()
	bad := []string{
		"",
		"00-short",
		strings.Replace(valid, "-", "_", 1),
		"ff" + valid[2:], // forbidden version
		"00-" + strings.Repeat("0", 32) + valid[35:],               // zero trace ID
		valid[:36] + strings.Repeat("0", 16) + "-01",               // zero span ID
		"00-" + strings.Repeat("zz", 16) + valid[35:],              // non-hex trace
		valid[:36] + strings.Repeat("g", 16) + "-01",               // non-hex span
		strings.Replace(valid, "-01", "+01", 1)[:52] + "x01" + "x", // mangled tail
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted", s)
		}
	}
}

func TestTracerRecordAndRead(t *testing.T) {
	tr := NewTracer(16, nil)
	root := NewTrace()
	child := root.Child()
	tr.Record(root, [8]byte{}, "ingress", "POST /v1/jobs", 100, 50)
	tr.Record(child, root.SpanID, "pool.run", "", 110, 30)
	other := NewTrace()
	tr.Record(other, [8]byte{}, "noise", "", 5, 5)

	spans := tr.Trace(root.TraceString())
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "ingress" || spans[1].Name != "pool.run" {
		t.Fatalf("bad order/names: %+v", spans)
	}
	if spans[1].ParentID != root.SpanString() {
		t.Fatalf("child parent = %q, want %q", spans[1].ParentID, root.SpanString())
	}
	tree := SpanTree(spans)
	if len(tree) != 1 || tree[0].Name != "ingress" || len(tree[0].Children) != 1 {
		t.Fatalf("bad tree: %+v", tree)
	}
	if got := tr.Trace("zz"); got != nil {
		t.Fatalf("invalid ID returned spans: %v", got)
	}
	if rec, _ := tr.Stats(); rec != 3 {
		t.Fatalf("recorded = %d, want 3", rec)
	}
}

// A collector ring that wraps mid-trace must still return the surviving
// spans, and SpanTree must promote spans whose parent was overwritten.
func TestTracerRingWrapMidTrace(t *testing.T) {
	tr := NewTracer(4, nil)
	root := NewTrace()
	tr.Record(root, [8]byte{}, "ingress", "", 0, 100)
	kids := make([]TraceContext, 5)
	for i := range kids {
		kids[i] = root.Child()
		tr.Record(kids[i], root.SpanID, "step", "", int64(10+i), 1)
	}
	// Capacity 4, six records: "ingress" and the first child were
	// overwritten; four steps survive.
	spans := tr.Trace(root.TraceString())
	if len(spans) != 4 {
		t.Fatalf("got %d spans after wrap, want 4", len(spans))
	}
	if _, dropped := tr.Stats(); dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
	tree := SpanTree(spans)
	if len(tree) != 4 {
		t.Fatalf("orphans not promoted to roots: %d roots", len(tree))
	}
	for _, n := range tree {
		if n.Name != "step" {
			t.Fatalf("unexpected root %q", n.Name)
		}
	}
}

// Out-of-order arrival (child recorded before parent) must still
// assemble into one tree.
func TestSpanTreeOutOfOrder(t *testing.T) {
	tr := NewTracer(8, nil)
	root := NewTrace()
	mid := root.Child()
	leaf := mid.Child()
	tr.Record(leaf, mid.SpanID, "leaf", "", 30, 1)
	tr.Record(mid, root.SpanID, "mid", "", 20, 20)
	tr.Record(root, [8]byte{}, "root", "", 10, 40)
	tree := SpanTree(tr.Trace(root.TraceString()))
	if len(tree) != 1 || tree[0].Name != "root" {
		t.Fatalf("bad roots: %+v", tree)
	}
	if len(tree[0].Children) != 1 || tree[0].Children[0].Name != "mid" {
		t.Fatalf("bad mid level: %+v", tree[0].Children)
	}
	if len(tree[0].Children[0].Children) != 1 || tree[0].Children[0].Children[0].Name != "leaf" {
		t.Fatalf("bad leaf level")
	}
}

func TestTracerExportJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(4, &buf)
	tc := NewTrace()
	tr.Record(tc, [8]byte{}, "ingress", "d", 1, 2)
	line := strings.TrimSpace(buf.String())
	var rec SpanRec
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("export line not JSON: %v (%q)", err, line)
	}
	if rec.TraceID != tc.TraceString() || rec.Name != "ingress" || rec.DurNS != 2 {
		t.Fatalf("bad export record: %+v", rec)
	}
}

func TestTracerNilAndDisabled(t *testing.T) {
	var tr *Tracer
	tr.Record(NewTrace(), [8]byte{}, "x", "", 0, 0) // must not panic
	if tr.Trace("0123") != nil {
		t.Fatal("nil tracer returned spans")
	}
	if r, d := tr.Stats(); r != 0 || d != 0 {
		t.Fatal("nil tracer has stats")
	}
	live := NewTracer(4, nil)
	live.Record(TraceContext{}, [8]byte{}, "invalid", "", 0, 0)
	if rec, _ := live.Stats(); rec != 0 {
		t.Fatal("invalid context was recorded")
	}
}

func TestTracerRecordNoAllocs(t *testing.T) {
	tr := NewTracer(64, nil)
	tc := NewTrace()
	parent := tc.SpanID
	child := tc.Child()
	allocs := testing.AllocsPerRun(200, func() {
		tr.Record(child, parent, "pool.run", "tier=memory", 1000, 10)
	})
	if allocs != 0 {
		t.Fatalf("Tracer.Record allocates %v allocs/op, want 0", allocs)
	}
}

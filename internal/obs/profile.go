package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// StartProfile begins collecting a profile of the given kind into path
// and returns a stop function that finalizes the file. Kinds:
//
//   - "cpu":   a pprof CPU profile over the instrumented interval
//   - "mem":   a pprof heap profile captured at stop (after a GC)
//   - "trace": a runtime execution trace over the interval
//
// An empty path defaults to <kind>.pprof ("trace" to trace.out). The
// files are standard `go tool pprof` / `go tool trace` inputs.
func StartProfile(kind, path string) (stop func() error, err error) {
	if path == "" {
		path = kind + ".pprof"
		if kind == "trace" {
			path = "trace.out"
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: profile output: %w", err)
	}
	switch kind {
	case "cpu":
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		return func() error {
			pprof.StopCPUProfile()
			return f.Close()
		}, nil
	case "mem":
		return func() error {
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("obs: heap profile: %w", err)
			}
			return f.Close()
		}, nil
	case "trace":
		if err := trace.Start(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: execution trace: %w", err)
		}
		return func() error {
			trace.Stop()
			return f.Close()
		}, nil
	default:
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("obs: unknown profile kind %q (cpu, mem, trace)", kind)
	}
}

// ProfileFlags registers the shared -profile and -profile-out flags and
// returns a function that, after flag.Parse, starts the requested
// profile (no-op when -profile is unset) and returns the stop function
// to defer.
func ProfileFlags() func() (stop func() error, err error) {
	kind := flag.String("profile", "", "write a profile: cpu, mem, or trace")
	out := flag.String("profile-out", "", "profile output path (default <kind>.pprof, trace.out)")
	return func() (func() error, error) {
		if *kind == "" {
			return func() error { return nil }, nil
		}
		return StartProfile(*kind, *out)
	}
}

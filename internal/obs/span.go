package obs

import (
	"sync"
	"time"
)

// Canonical pipeline phase names. The phases of one analysis run, in
// order; tools use the subset that applies to their pipeline. Keeping the
// vocabulary here (rather than as ad-hoc strings at every call site)
// keeps the /metrics phase label set and the RunReport JSON stable.
const (
	PhaseParse     = "parse"     // read the input (XML, JSON, XTA source)
	PhaseValidate  = "validate"  // configuration validation
	PhaseBuild     = "build"     // model construction (Algorithm 1)
	PhaseIndex     = "index"     // static interpretation index construction
	PhaseInterpret = "interpret" // the NSA interpretation run
	PhaseCheck     = "check"     // schedulability criterion over the trace
	PhaseExport    = "export"    // trace/report serialization
	PhasePlan      = "plan"      // compositional decomposition and contract derivation
	PhaseCompose   = "compose"   // per-module analyses and the interface refinement check
)

// PhaseSpan is one completed (or still-open) span of a Timeline: a named
// pipeline phase with its offset from the run start and duration, both in
// nanoseconds so the JSON form is unit-unambiguous. Depth is the number
// of enclosing spans still open when this one started, so nested
// instrumentation (e.g. "index" inside "build") renders as a tree.
type PhaseSpan struct {
	Name    string `json:"name"`
	Depth   int    `json:"depth,omitempty"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// Timeline records the phase spans of one run. The zero value is not
// usable; create one with NewTimeline. A nil *Timeline is the disabled
// timeline: Start returns a nil *Span and both are no-ops, so pipeline
// code can instrument unconditionally.
//
// Timelines are mutex-guarded rather than atomic: spans open and close a
// handful of times per run (pipeline-phase granularity, never inside the
// interpretation loop), so contention is irrelevant and the lock keeps
// the span slice simple.
type Timeline struct {
	mu    sync.Mutex
	t0    time.Time
	open  int
	spans []PhaseSpan
}

// NewTimeline starts a timeline at the current time.
func NewTimeline() *Timeline { return &Timeline{t0: time.Now()} }

// Span is an open phase started by Timeline.Start; End closes it.
type Span struct {
	tl    *Timeline
	idx   int
	begin time.Time
}

// Start opens a span named name. Nil-safe: on a nil timeline it returns
// a nil span whose End is a no-op.
func (t *Timeline) Start(name string) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	idx := len(t.spans)
	t.spans = append(t.spans, PhaseSpan{
		Name:    name,
		Depth:   t.open,
		StartNS: now.Sub(t.t0).Nanoseconds(),
	})
	t.open++
	t.mu.Unlock()
	return &Span{tl: t, idx: idx, begin: now}
}

// End closes the span and returns its duration. Nil-safe; ending a span
// twice keeps the first duration.
func (s *Span) End() time.Duration {
	if s == nil || s.tl == nil {
		return 0
	}
	d := time.Since(s.begin)
	t := s.tl
	s.tl = nil // idempotent
	t.mu.Lock()
	t.spans[s.idx].DurNS = d.Nanoseconds()
	if t.open > 0 {
		t.open--
	}
	t.mu.Unlock()
	return d
}

// Spans returns a copy of the recorded spans in start order.
func (t *Timeline) Spans() []PhaseSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PhaseSpan, len(t.spans))
	copy(out, t.spans)
	return out
}

// RunReport is the per-run telemetry document: the pipeline phase spans,
// the engine hot-path counters, and the total wall time. It is attached
// to completed jobs (GET /v1/jobs/{id}/report), embedded in the -report
// JSON of the CLIs, and its JSON schema is pinned by a golden file in
// internal/trace/testdata.
type RunReport struct {
	// Tool names the producing pipeline ("simulate", "saserve", ...).
	Tool string `json:"tool,omitempty"`
	// Phases are the pipeline spans in start order.
	Phases []PhaseSpan `json:"phases,omitempty"`
	// Counters are the engine hot-path counters of the run.
	Counters Counters `json:"counters"`
	// TotalNS is the wall time from timeline start to report creation.
	TotalNS int64 `json:"total_ns"`
}

// Report finalizes the timeline into a RunReport, folding in the probe's
// counters. Nil-safe on both receivers: a nil timeline yields a report
// with no phases, a nil probe zero counters.
func (t *Timeline) Report(tool string, p *Probe) *RunReport {
	r := &RunReport{Tool: tool, Counters: p.Snapshot()}
	if t != nil {
		r.Phases = t.Spans()
		r.TotalNS = time.Since(t.t0).Nanoseconds()
	}
	return r
}

// PhaseDur returns the total duration of the named phase (summed over
// repeated spans), or 0 when absent.
func (r *RunReport) PhaseDur(name string) time.Duration {
	if r == nil {
		return 0
	}
	var ns int64
	for i := range r.Phases {
		if r.Phases[i].Name == name {
			ns += r.Phases[i].DurNS
		}
	}
	return time.Duration(ns)
}

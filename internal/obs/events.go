package obs

import "sync"

// EventHub fans live events out to subscribers — the backing of the
// campaign/synthesis SSE streams. The zero value is ready to use.
// Publish never blocks: a subscriber whose buffer is full loses the
// event (the ops view is a live feed, not a durable log; slow consumers
// must never stall an exploration).
type EventHub struct {
	mu   sync.Mutex
	subs map[int]chan any
	next int
}

// Subscribe registers a subscriber with the given channel buffer
// (minimum 1) and returns its channel plus a cancel function. Cancel is
// idempotent and closes the channel.
func (h *EventHub) Subscribe(buf int) (<-chan any, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan any, buf)
	h.mu.Lock()
	if h.subs == nil {
		h.subs = make(map[int]chan any)
	}
	id := h.next
	h.next++
	h.subs[id] = ch
	h.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			delete(h.subs, id)
			h.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

// Publish delivers ev to every subscriber with buffer room.
func (h *EventHub) Publish(ev any) {
	h.mu.Lock()
	for _, ch := range h.subs {
		select {
		case ch <- ev:
		default: // subscriber too slow; drop
		}
	}
	h.mu.Unlock()
}

// Subscribers returns the number of live subscribers.
func (h *EventHub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

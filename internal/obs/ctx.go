package obs

import (
	"context"
	"log/slog"
)

// Context plumbing for per-request telemetry. Each helper follows the
// same contract: attaching a nil/zero value returns the context
// unchanged, and extraction returns the zero value when absent, so call
// sites thread telemetry unconditionally and pay one branch when it is
// disabled.

type traceCtxKey struct{}

// WithTrace attaches a trace context; invalid contexts attach nothing.
func WithTrace(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFrom extracts the trace context, zero when absent.
func TraceFrom(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc
}

type flightCtxKey struct{}

// WithFlight attaches a flight recorder; nil attaches nothing.
func WithFlight(ctx context.Context, f *FlightRecorder) context.Context {
	if f == nil {
		return ctx
	}
	return context.WithValue(ctx, flightCtxKey{}, f)
}

// FlightFrom extracts the flight recorder, nil when absent.
func FlightFrom(ctx context.Context) *FlightRecorder {
	f, _ := ctx.Value(flightCtxKey{}).(*FlightRecorder)
	return f
}

type loggerCtxKey struct{}

// CtxWithLogger attaches a request-scoped logger (already carrying the
// job/trace attrs) so layers below the pool log with full attribution.
func CtxWithLogger(ctx context.Context, lg *slog.Logger) context.Context {
	if lg == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerCtxKey{}, lg)
}

// LoggerFrom extracts the request-scoped logger, nil when absent.
func LoggerFrom(ctx context.Context) *slog.Logger {
	lg, _ := ctx.Value(loggerCtxKey{}).(*slog.Logger)
	return lg
}

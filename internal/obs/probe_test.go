package obs

import (
	"sync"
	"testing"
)

// TestProbeConcurrentCounts hammers one probe from many goroutines and
// checks the totals; run under -race this also proves the counters are
// data-race free (the reason they are atomics, not plain ints).
func TestProbeConcurrentCounts(t *testing.T) {
	p := &Probe{}
	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p.Steps.Add(1)
				p.GuardEvals.Add(2)
				p.RaiseDirtyMax(int64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	c := p.Snapshot()
	if want := int64(workers * perWorker); c.Steps != want {
		t.Errorf("Steps = %d, want %d", c.Steps, want)
	}
	if want := int64(2 * workers * perWorker); c.GuardEvals != want {
		t.Errorf("GuardEvals = %d, want %d", c.GuardEvals, want)
	}
	if want := int64(workers*perWorker - 1); c.DirtyMax != want {
		t.Errorf("DirtyMax = %d, want %d", c.DirtyMax, want)
	}
}

func TestProbeNilSafe(t *testing.T) {
	var p *Probe
	if c := p.Snapshot(); c != (Counters{}) {
		t.Errorf("nil Snapshot = %+v, want zero", c)
	}
	p.Merge(Counters{Steps: 5}) // must not panic
	p.RaiseDirtyMax(7)          // must not panic
}

func TestProbeMerge(t *testing.T) {
	p := &Probe{}
	p.Merge(Counters{Steps: 3, Actions: 2, Delays: 1, DirtyMax: 4})
	p.Merge(Counters{Steps: 2, DirtyMax: 2})
	c := p.Snapshot()
	if c.Steps != 5 || c.Actions != 2 || c.Delays != 1 {
		t.Errorf("merged counters = %+v", c)
	}
	if c.DirtyMax != 4 {
		t.Errorf("DirtyMax = %d, want max-merge 4", c.DirtyMax)
	}
}

// TestDisabledProbeAllocationFree pins the zero-cost claim for the
// disabled path: touching a nil probe the way the engine does must not
// allocate.
func TestDisabledProbeAllocationFree(t *testing.T) {
	var p *Probe
	allocs := testing.AllocsPerRun(1000, func() {
		if p != nil { // the engine's guard pattern
			p.Steps.Add(1)
		}
		_ = p.Snapshot()
		p.Merge(Counters{})
		p.RaiseDirtyMax(1)
	})
	if allocs != 0 {
		t.Errorf("disabled probe path allocates %v per run, want 0", allocs)
	}
}

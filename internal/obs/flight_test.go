package obs

import (
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderWrap(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		f.Record(FlightEdge, int64(i), int64(i), 0, "")
	}
	if f.Len() != 4 {
		t.Fatalf("Len = %d, want 4", f.Len())
	}
	evs := f.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("snapshot %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(i + 2); ev.Time != want {
			t.Fatalf("event %d time = %d, want %d (oldest-first)", i, ev.Time, want)
		}
		if ev.Kind != "edge" {
			t.Fatalf("event %d kind = %q", i, ev.Kind)
		}
	}
}

func TestFlightRecorderResetAndKinds(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(FlightSeed, 0, 42, 0, "")
	f.Record(FlightInstant, 20, 20, 0, "")
	f.RecordWall(FlightWatchdog, 1, 0, "j000001")
	evs := f.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Kind != "seed" || evs[0].Arg != 42 {
		t.Fatalf("bad seed event %+v", evs[0])
	}
	if evs[2].Kind != "watchdog" || evs[2].Label != "j000001" || evs[2].WallNS == 0 {
		t.Fatalf("bad watchdog event %+v", evs[2])
	}
	f.Reset()
	if f.Len() != 0 || f.Snapshot() != nil && len(f.Snapshot()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightEdge, 1, 2, 3, "")
	f.RecordWall(FlightFault, 0, 0, "site")
	f.Reset()
	if f.Len() != 0 || f.Snapshot() != nil {
		t.Fatal("nil recorder not inert")
	}
}

func TestFlightRecorderRecordNoAllocs(t *testing.T) {
	f := NewFlightRecorder(64)
	allocs := testing.AllocsPerRun(200, func() {
		f.Record(FlightEdge, 100, 3, 1, "")
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v allocs/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		f.RecordWall(FlightBreaker, 1, 0, "trip")
	})
	if allocs != 0 {
		t.Fatalf("RecordWall allocates %v allocs/op, want 0", allocs)
	}
}

// Concurrent recorders and snapshotters must be race-free (the pool's
// service ring is shared by workers, the sweeper and HTTP dumps).
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(32)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f.Record(FlightEdge, int64(i), int64(g), 0, "")
			}
		}(g)
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		_ = f.Snapshot()
		_ = f.Len()
	}
	close(stop)
	wg.Wait()
}

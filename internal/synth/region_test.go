package synth

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"stopwatchsim/internal/jobs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRegionGolden pins the region export schema — the body of
// GET /v1/synth/{id}/region and of `synth export` — by running the 1-D
// breakdown synthesis for real and comparing its region byte-for-byte. The
// schema deliberately carries no timestamps, and the refinement is
// deterministic, so the export is a pure function of the space: a diff
// here means either the schema or the refinement itself changed — bump
// regionSchemaVersion if the schema did, and regenerate with -update.
func TestRegionGolden(t *testing.T) {
	pool := jobs.New(jobs.Options{Workers: 1})
	defer pool.Close()
	eng := NewEngine(pool, nil, nil)

	space := oneDimSpace()
	space.Parallel = 1
	final := runSynth(t, eng, space)
	if final.Status != StatusDone {
		t.Fatalf("status = %s (%s)", final.Status, final.Error)
	}
	region := final.Region

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(region); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "region.json.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("region export drifted from golden file (run with -update after a deliberate change):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

package synth

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/store"
)

// runSynth starts space on the engine and waits for the terminal state.
func runSynth(t *testing.T, eng *Engine, space *Space) State {
	t.Helper()
	st, err := eng.Start(space)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(t.Context(), 2*time.Minute)
	defer cancel()
	final, err := eng.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return final
}

// feasibleBreakdown is the analytic oracle for synthSystem with task a's
// WCET varied: EDF, implicit deadlines, full window, so schedulable iff
// utilization Ca/10 + 5/10 <= 1, i.e. Ca <= 5.

func TestRefine1DBreakdown(t *testing.T) {
	pool := jobs.New(jobs.Options{Workers: 2})
	defer pool.Close()
	eng := NewEngine(pool, nil, nil)

	final := runSynth(t, eng, oneDimSpace())
	if final.Status != StatusDone {
		t.Fatalf("status = %s (%s)", final.Status, final.Error)
	}
	r := final.Region
	if r == nil {
		t.Fatal("no region on a done synthesis")
	}
	want := []Box{
		{Min: []float64{1}, Max: []float64{5}, Verdict: VerdictFeasible, Cells: 4},
		{Min: []float64{5}, Max: []float64{6}, Verdict: VerdictBoundary, Cells: 1},
		{Min: []float64{6}, Max: []float64{10}, Verdict: VerdictInfeasible, Cells: 4},
	}
	if !reflect.DeepEqual(r.Boxes, want) {
		t.Fatalf("boxes = %+v, want %+v", r.Boxes, want)
	}
	wantW := []Witness{{Feasible: []float64{5}, Infeasible: []float64{6}}}
	if !reflect.DeepEqual(r.Boundary, wantW) {
		t.Fatalf("boundary = %+v, want %+v", r.Boundary, wantW)
	}
	if r.TotalCells != 9 || r.DecidedCells != 8 {
		t.Fatalf("cells: %d decided of %d, want 8 of 9", r.DecidedCells, r.TotalCells)
	}
	if got, wantCov := r.Coverage, 8.0/9.0; got != wantCov {
		t.Fatalf("coverage = %g, want %g", got, wantCov)
	}
	// Bisection beats the grid sweep: well under the 10 lattice values.
	if r.Counts.Evaluations >= 10 {
		t.Errorf("evaluations = %d, want < 10 (grid size)", r.Counts.Evaluations)
	}
	if r.Counts.EngineRuns != r.Counts.Evaluations {
		t.Errorf("engine runs = %d, evaluations = %d; memory-only run should compute all",
			r.Counts.EngineRuns, r.Counts.Evaluations)
	}
	if r.Counts.BisectIterations == 0 {
		t.Error("no bisect iterations recorded")
	}
}

// TestRefine1DInverted covers the opposite monotone direction: the width
// of the partition's only window, where feasibility grows with the
// parameter. One FPPS task C=3, T=D=10 inside window [0, w]: schedulable
// iff w >= 3.
func TestRefine1DInverted(t *testing.T) {
	base := &config.System{
		Name:      "window-width",
		CoreTypes: []string{"cpu"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []config.Partition{{
			Name: "P1", Core: 0, Policy: config.FPPS,
			Tasks: []config.Task{
				{Name: "t", Priority: 1, WCET: []int64{3}, Period: 10, Deadline: 10},
			},
			Windows: []config.Window{{Start: 0, End: 5}},
		}},
	}
	space := &Space{
		Name: "widen",
		Base: base,
		Dims: []Dim{{Target: "window:P1.0", Min: 1, Max: 10}},
	}
	pool := jobs.New(jobs.Options{Workers: 2})
	defer pool.Close()
	eng := NewEngine(pool, nil, nil)

	final := runSynth(t, eng, space)
	if final.Status != StatusDone {
		t.Fatalf("status = %s (%s)", final.Status, final.Error)
	}
	r := final.Region
	want := []Box{
		{Min: []float64{1}, Max: []float64{2}, Verdict: VerdictInfeasible, Cells: 1},
		{Min: []float64{2}, Max: []float64{3}, Verdict: VerdictBoundary, Cells: 1},
		{Min: []float64{3}, Max: []float64{10}, Verdict: VerdictFeasible, Cells: 7},
	}
	if !reflect.DeepEqual(r.Boxes, want) {
		t.Fatalf("boxes = %+v, want %+v", r.Boxes, want)
	}
	wantW := []Witness{{Feasible: []float64{3}, Infeasible: []float64{2}}}
	if !reflect.DeepEqual(r.Boundary, wantW) {
		t.Fatalf("boundary = %+v, want %+v", r.Boundary, wantW)
	}
}

// TestRefine2DBoxes checks the multi-dimensional mode against the
// analytic oracle on synthSystem with both WCETs varied: schedulable iff
// Ca + Cb <= 10. Every decided box must agree with the oracle on every
// lattice point it contains, the boxes must partition the bounding box
// exactly, and the refinement must use fewer oracle runs than the
// 10x10 grid sweep at the same resolution.
func TestRefine2DBoxes(t *testing.T) {
	space := &Space{
		Name: "2d-wcet",
		Base: synthSystem(),
		Dims: []Dim{
			{Target: "wcet:P1.a", Min: 1, Max: 10},
			{Target: "wcet:P1.b", Min: 1, Max: 10},
		},
		Parallel: 4,
	}
	pool := jobs.New(jobs.Options{Workers: 4})
	defer pool.Close()
	eng := NewEngine(pool, nil, nil)

	final := runSynth(t, eng, space)
	if final.Status != StatusDone {
		t.Fatalf("status = %s (%s)", final.Status, final.Error)
	}
	r := final.Region
	oracle := func(a, b float64) bool { return a+b <= 10 }

	var cells, decided int64
	boundary := 0
	for _, b := range r.Boxes {
		cells += b.Cells
		if got := int64((b.Max[0] - b.Min[0]) * (b.Max[1] - b.Min[1])); got != b.Cells {
			t.Errorf("box %v-%v: cells=%d, geometry says %d", b.Min, b.Max, b.Cells, got)
		}
		switch b.Verdict {
		case VerdictBoundary:
			boundary++
			if b.Cells != 1 {
				t.Errorf("boundary box %v-%v spans %d cells, want 1", b.Min, b.Max, b.Cells)
			}
			continue
		case VerdictFeasible, VerdictInfeasible:
			decided += b.Cells
		default:
			t.Fatalf("box %v-%v has verdict %q", b.Min, b.Max, b.Verdict)
		}
		// Every lattice point inside the box must match its verdict.
		for a := b.Min[0]; a <= b.Max[0]; a++ {
			for bb := b.Min[1]; bb <= b.Max[1]; bb++ {
				if want := b.Verdict == VerdictFeasible; oracle(a, bb) != want {
					t.Errorf("box %v-%v verdict %s contradicts oracle at (%g,%g)",
						b.Min, b.Max, b.Verdict, a, bb)
				}
			}
		}
	}
	if cells != 81 || r.TotalCells != 81 {
		t.Errorf("boxes cover %d cells of total %d, want 81 of 81", cells, r.TotalCells)
	}
	// The diagonal a+b=10 crosses cells with i+j in {7,8}: 8+9 of them.
	if boundary != 17 {
		t.Errorf("boundary boxes = %d, want 17", boundary)
	}
	if decided != 64 || r.DecidedCells != 64 {
		t.Errorf("decided cells = %d (region says %d), want 64", decided, r.DecidedCells)
	}
	if len(r.Boundary) != boundary {
		t.Errorf("boundary witnesses = %d, boundary boxes = %d", len(r.Boundary), boundary)
	}
	for _, w := range r.Boundary {
		if w.Feasible == nil || w.Infeasible == nil {
			t.Errorf("witness %+v is one-sided", w)
			continue
		}
		if !oracle(w.Feasible[0], w.Feasible[1]) || oracle(w.Infeasible[0], w.Infeasible[1]) {
			t.Errorf("witness %+v contradicts oracle", w)
		}
	}
	if r.Counts.Evaluations >= 100 {
		t.Errorf("evaluations = %d, want < 100 (grid at same resolution)", r.Counts.Evaluations)
	}
	if r.Counts.Splits == 0 {
		t.Error("no splits recorded in a mixed 2-D space")
	}
	m := eng.Metrics()
	if m.Started != 1 || m.Done != 1 {
		t.Errorf("metrics started=%d done=%d, want 1/1", m.Started, m.Done)
	}
	if m.PointsComputed != int64(r.Counts.EngineRuns) {
		t.Errorf("metrics points_computed=%d, counts engine_runs=%d", m.PointsComputed, r.Counts.EngineRuns)
	}
}

// TestStartIsContentAddressed: starting the same space twice returns the
// same synthesis without a second run; a different name is a different
// synthesis.
func TestStartIsContentAddressed(t *testing.T) {
	pool := jobs.New(jobs.Options{Workers: 2})
	defer pool.Close()
	eng := NewEngine(pool, nil, nil)

	first := runSynth(t, eng, oneDimSpace())
	again, err := eng.Start(oneDimSpace())
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != first.ID {
		t.Fatalf("same space started as %s and %s", first.ID, again.ID)
	}
	if again.Status != StatusDone {
		t.Fatalf("re-start status = %s, want done snapshot", again.Status)
	}
	if m := eng.Metrics(); m.Started != 1 {
		t.Errorf("started = %d, want 1", m.Started)
	}
	other := oneDimSpace()
	other.Name = "breakdown-a-again"
	st, err := eng.Start(other)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == first.ID {
		t.Fatal("distinct spaces share an ID")
	}
	if len(eng.List()) != 2 {
		t.Fatalf("list has %d syntheses, want 2", len(eng.List()))
	}
}

func TestEngineUnknownID(t *testing.T) {
	pool := jobs.New(jobs.Options{Workers: 1})
	defer pool.Close()
	eng := NewEngine(pool, nil, nil)
	if _, ok := eng.Get("nope"); ok {
		t.Error("Get on unknown ID succeeded")
	}
	if eng.Cancel("nope") {
		t.Error("Cancel on unknown ID succeeded")
	}
	ctx, cancel := context.WithTimeout(t.Context(), time.Second)
	defer cancel()
	if _, err := eng.Wait(ctx, "nope"); err != ErrUnknownSynthesis {
		t.Errorf("Wait on unknown ID: err = %v", err)
	}
}

// TestMaxPointsBudget: a synthesis that would need more evaluations than
// its budget fails loudly instead of reporting a partial region.
func TestMaxPointsBudget(t *testing.T) {
	space := oneDimSpace()
	space.MaxPoints = 2
	pool := jobs.New(jobs.Options{Workers: 1})
	defer pool.Close()
	eng := NewEngine(pool, nil, nil)

	final := runSynth(t, eng, space)
	if final.Status != StatusFailed {
		t.Fatalf("status = %s, want failed", final.Status)
	}
	if !strings.Contains(final.Error, "evaluation budget") {
		t.Fatalf("error = %q, want budget exhaustion", final.Error)
	}
	if m := eng.Metrics(); m.Failed != 1 {
		t.Errorf("failed = %d, want 1", m.Failed)
	}
}

// TestResumeReusesCheckpoint is the crash-resume contract, mirroring the
// campaign one: rewind a finished checkpoint by a few points, mark it
// running, restart on a fresh pool/engine/store handle, and the resumed
// synthesis recomputes exactly the dropped points and re-derives the same
// region boxes.
func TestResumeReusesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{PinnedKinds: []string{StoreKind()}})
	if err != nil {
		t.Fatal(err)
	}
	space := &Space{
		Name: "resume-2d",
		Base: synthSystem(),
		Dims: []Dim{
			{Target: "wcet:P1.a", Min: 1, Max: 10},
			{Target: "wcet:P1.b", Min: 1, Max: 10},
		},
		Parallel: 1,
	}

	pool1 := jobs.New(jobs.Options{Workers: 1, Store: st})
	eng1 := NewEngine(pool1, st, nil)
	final := runSynth(t, eng1, space)
	if final.Status != StatusDone {
		t.Fatalf("first run status = %s (%s)", final.Status, final.Error)
	}
	total := len(final.Points)
	if total < 8 {
		t.Fatalf("first run evaluated only %d points", total)
	}
	pool1.Close()

	// Simulated crash between checkpoints: drop the last 3 points, mark
	// running, and delete their pool-tier outcomes so resume must truly
	// recompute them.
	const dropped = 3
	rewound := final.clone()
	rewound.Points = rewound.Points[:total-dropped]
	rewound.Status = StatusRunning
	rewound.Region = nil
	if err := st.Put(StoreKind(), rewound.ID, &rewound); err != nil {
		t.Fatal(err)
	}
	for _, p := range final.Points[total-dropped:] {
		if err := st.Delete("outcome", p.Fingerprint); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	st2, err := store.Open(dir, store.Options{PinnedKinds: []string{StoreKind()}})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	pool2 := jobs.New(jobs.Options{Workers: 1, Store: st2})
	defer pool2.Close()
	eng2 := NewEngine(pool2, st2, nil)

	resumed := eng2.ResumeAll()
	if len(resumed) != 1 || resumed[0] != final.ID {
		t.Fatalf("resumed = %v, want [%s]", resumed, final.ID)
	}
	ctx, cancel := context.WithTimeout(t.Context(), 2*time.Minute)
	defer cancel()
	done, err := eng2.Wait(ctx, final.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone {
		t.Fatalf("resumed status = %s (%s)", done.Status, done.Error)
	}
	if len(done.Points) != total {
		t.Fatalf("resumed synthesis has %d points, want %d", len(done.Points), total)
	}
	// Exactly the dropped points went back through the pool.
	if m := eng2.Metrics(); m.Resumed != 1 || m.PointsComputed != dropped {
		t.Errorf("metrics resumed=%d points_computed=%d, want 1/%d", m.Resumed, m.PointsComputed, dropped)
	}
	// The refinement re-derives the identical cover.
	if !reflect.DeepEqual(done.Region.Boxes, final.Region.Boxes) {
		t.Errorf("resumed region boxes differ from the original")
	}
	if !reflect.DeepEqual(done.Region.Boundary, final.Region.Boundary) {
		t.Errorf("resumed region boundary differs from the original")
	}
	if done.Region.Coverage != final.Region.Coverage {
		t.Errorf("resumed coverage %g != original %g", done.Region.Coverage, final.Region.Coverage)
	}

	// A completed checkpoint registers inert on yet another engine: the
	// state and region are served from the store with no relaunch.
	eng3 := NewEngine(pool2, st2, nil)
	again, err := eng3.Start(space)
	if err != nil {
		t.Fatal(err)
	}
	if again.Status != StatusDone || again.Region == nil {
		t.Fatalf("stored synthesis re-served as %s (region %v)", again.Status, again.Region != nil)
	}
	if m := eng3.Metrics(); m.Started != 0 || m.Resumed != 0 {
		t.Errorf("inert registration bumped started=%d resumed=%d", m.Started, m.Resumed)
	}
}

// Package synth synthesizes feasible parameter regions: it promotes
// configuration fields (WCETs, periods, deadlines, offsets, window
// widths, quanta) to first-class symbolic parameters and maps the region
// of parameter space where the system stays schedulable, using the
// deterministic NSA interpretation as a point oracle. This is the
// parametric counterpart of internal/campaign: where a campaign explores
// an enumerated design space point by point, a synthesis *covers* a
// continuous box of parameter values with verdict-labelled sub-boxes,
// evaluating only the points the cover needs — the classical parameter
// synthesis workflow of the IMITATOR models in SNIPPETS.md, rebuilt on
// concrete-valued oracle runs over an integer lattice.
//
// A Space declares the symbolic dimensions: each names a config.ParamTarget
// (the same spellings campaign "target:" axes use) with inclusive bounds
// and a lattice resolution. Synthesis refines the bounding box:
//
//   - one dimension: exact breakdown bisection (the campaign bisect
//     algorithm), yielding a feasible prefix, an infeasible suffix and the
//     one lattice cell between them;
//   - several dimensions: recursive box refinement — evaluate a box's
//     2^d corners and its center; a box whose probes agree is classified
//     whole, a disagreeing box splits along its widest dimension at the
//     lattice midpoint (children share the split plane, so corner
//     evaluations are reused), and a disagreeing box of single-cell width
//     is an atomic boundary cell carrying a feasible/infeasible witness
//     pair.
//
// Corner classification is exact when feasibility is monotone in each
// dimension separately (in either direction per dimension) — true for
// WCET-like and period-like parameters under the paper's model, where a
// configuration dominated point-wise by a schedulable one is schedulable.
// The center probe is a cheap guard against non-monotone interiors: a
// center disagreeing with unanimous corners forces a split instead of a
// wrong whole-box verdict.
//
// Like campaigns, syntheses are content-addressed (Space.Fingerprint is
// the synthesis ID), checkpoint every evaluated point to the artifact
// store, and resume after a crash by re-deriving the deterministic
// refinement with recorded points answering instantly.
package synth

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"math"
	"strconv"
	"strings"

	"stopwatchsim/internal/config"
)

// Dim is one symbolic parameter dimension: a named configuration field
// with inclusive bounds and a lattice resolution.
type Dim struct {
	// Target is the config.ParamTarget spelling of the varied field, e.g.
	// "wcet:P1.t1" or "offset:P2".
	Target string `json:"target"`
	// Min and Max bound the explored interval, inclusive. Max-Min must be
	// a positive multiple of Res.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Res is the lattice spacing — the resolution the region is exact to;
	// <= 0 means 1.
	Res float64 `json:"res,omitempty"`
}

// res returns the lattice spacing, defaulting to 1.
func (d *Dim) res() float64 {
	if d.Res <= 0 {
		return 1
	}
	return d.Res
}

// cells returns the number of lattice cells along the dimension: the
// interval [Min, Max] holds cells+1 lattice values.
func (d *Dim) cells() int {
	return int(math.Round((d.Max - d.Min) / d.res()))
}

// value maps a lattice index to its parameter value.
func (d *Dim) value(k int) float64 {
	if k == d.cells() {
		return d.Max // exact upper bound, no accumulation error
	}
	return d.Min + float64(k)*d.res()
}

// Space is a synthesis specification: the symbolic parameter space over a
// base system, the JSON body of POST /v1/synth and the input of
// `synth run`.
type Space struct {
	// Name labels the synthesis for humans; it participates in the
	// fingerprint.
	Name string `json:"name"`
	// Base is the system configuration the dimensions parameterize.
	Base *config.System `json:"base,omitempty"`
	// Dims are the symbolic dimensions, 1–3 of them.
	Dims []Dim `json:"dims"`
	// Parallel bounds in-flight point evaluations; <= 0 means 4.
	// Execution detail: not part of the fingerprint.
	Parallel int `json:"parallel,omitempty"`
	// MaxPoints bounds the total number of evaluated points as a safety
	// rail; <= 0 means 10000. A synthesis that exhausts it fails rather
	// than report a partial region as complete.
	MaxPoints int `json:"max_points,omitempty"`
}

const defaultMaxPoints = 10000

// ParseSpace decodes and validates a synthesis space from JSON.
func ParseSpace(r io.Reader) (*Space, error) {
	return ParseSpaceBase(r, nil)
}

// ParseSpaceBase decodes a space and, when it carries no base system,
// injects the one base() loads before validating; base may be nil or
// return (nil, nil) to inject nothing.
func ParseSpaceBase(r io.Reader, base func() (*config.System, error)) (*Space, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	s := &Space{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("synth: decoding space: %w", err)
	}
	if s.Base == nil && base != nil {
		sys, err := base()
		if err != nil {
			return nil, fmt.Errorf("synth: loading base system: %w", err)
		}
		s.Base = sys
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Validate checks the space: a name, a valid base, 1–3 well-formed
// distinct dimensions resolving against the base, and lattice geometry
// (bounds aligned to the resolution, at least one cell per dimension).
func (s *Space) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("synth: space needs a name")
	}
	if s.Base == nil {
		return fmt.Errorf("synth: space needs a base system")
	}
	if err := s.Base.Validate(); err != nil {
		return fmt.Errorf("synth: base system: %w", err)
	}
	if len(s.Dims) < 1 || len(s.Dims) > 3 {
		return fmt.Errorf("synth: space takes 1–3 dims, got %d", len(s.Dims))
	}
	seen := make(map[string]bool, len(s.Dims))
	for i := range s.Dims {
		d := &s.Dims[i]
		t, err := config.ParseParamTarget(d.Target)
		if err != nil {
			return fmt.Errorf("synth: dim %d: %w", i, err)
		}
		if err := t.Check(s.Base); err != nil {
			return fmt.Errorf("synth: dim %d: %w", i, err)
		}
		if seen[d.Target] {
			return fmt.Errorf("synth: dim %d repeats target %q", i, d.Target)
		}
		seen[d.Target] = true
		if d.Min < t.MinValue() {
			return fmt.Errorf("synth: dim %q minimum %g must be >= %g", d.Target, d.Min, t.MinValue())
		}
		if d.Max <= d.Min {
			return fmt.Errorf("synth: dim %q has max %g <= min %g", d.Target, d.Max, d.Min)
		}
		res := d.res()
		span := d.Max - d.Min
		n := math.Round(span / res)
		if math.Abs(span-n*res) > 1e-9*math.Max(1, math.Abs(span)) {
			return fmt.Errorf("synth: dim %q span %g is not a multiple of res %g", d.Target, span, res)
		}
		if n < 1 {
			return fmt.Errorf("synth: dim %q has no lattice cell (span %g, res %g)", d.Target, span, res)
		}
	}
	return nil
}

// maxPoints resolves the evaluation budget.
func (s *Space) maxPoints() int {
	if s.MaxPoints <= 0 {
		return defaultMaxPoints
	}
	return s.MaxPoints
}

// parallel resolves the in-flight evaluation bound.
func (s *Space) parallel() int {
	if s.Parallel <= 0 {
		return 4
	}
	return s.Parallel
}

// totalCells returns the cell volume of the full bounding box.
func (s *Space) totalCells() int64 {
	n := int64(1)
	for i := range s.Dims {
		n *= int64(s.Dims[i].cells())
	}
	return n
}

// targets parses every dimension's target. Call after Validate.
func (s *Space) targets() ([]*config.ParamTarget, error) {
	ts := make([]*config.ParamTarget, len(s.Dims))
	for i := range s.Dims {
		t, err := config.ParseParamTarget(s.Dims[i].Target)
		if err != nil {
			return nil, fmt.Errorf("synth: dim %d: %w", i, err)
		}
		ts[i] = t
	}
	return ts, nil
}

// Materialize builds the concrete system at a lattice point: the base
// cloned, every dimension's target applied at its indexed value, the
// result validated. Deterministic: the same space and index vector always
// yield the same system, hence the same config.Fingerprint — the
// invariant resume and the cache tiers rest on.
func (s *Space) Materialize(idx []int) (*config.System, error) {
	if len(idx) != len(s.Dims) {
		return nil, fmt.Errorf("synth: point %v has %d coordinates, space has %d dims", idx, len(idx), len(s.Dims))
	}
	ts, err := s.targets()
	if err != nil {
		return nil, err
	}
	sys := s.Base.Clone()
	for i, t := range ts {
		d := &s.Dims[i]
		if idx[i] < 0 || idx[i] > d.cells() {
			return nil, fmt.Errorf("synth: point %v coordinate %d outside lattice [0, %d]", idx, i, d.cells())
		}
		if err := t.Apply(sys, d.value(idx[i])); err != nil {
			return nil, fmt.Errorf("synth: point %v: %w", idx, err)
		}
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("synth: point %v: %w", idx, err)
	}
	return sys, nil
}

// values maps a lattice index vector to parameter values.
func (s *Space) values(idx []int) []float64 {
	vs := make([]float64, len(idx))
	for i, k := range idx {
		vs[i] = s.Dims[i].value(k)
	}
	return vs
}

// idxKey renders an index vector canonically for the verdict map and
// checkpoint labels.
func idxKey(idx []int) string {
	parts := make([]string, len(idx))
	for i, k := range idx {
		parts[i] = strconv.Itoa(k)
	}
	return strings.Join(parts, ",")
}

// fpVersion tags the canonical encoding of Space.Fingerprint; bump it
// when the encoding (or the meaning of any encoded field) changes so
// stale synthesis state cannot alias new spaces.
const fpVersion = "stopwatchsim/synth/v1"

// Fingerprint returns the stable content address of the synthesis: the
// hex SHA-256 of a canonical encoding of every field that affects which
// configurations are explored and how the region is derived. Execution
// knobs (Parallel) are excluded; the base system contributes through
// config.Fingerprint.
func (s *Space) Fingerprint() string {
	h := sha256.New()
	e := fpEncoder{h: h}
	e.str(fpVersion)
	e.str(s.Name)
	if s.Base == nil {
		e.str("")
	} else {
		e.str(s.Base.Fingerprint())
	}
	e.list(len(s.Dims))
	for i := range s.Dims {
		d := &s.Dims[i]
		e.str(d.Target)
		e.f64(d.Min)
		e.f64(d.Max)
		e.f64(d.Res)
	}
	e.num(int64(s.maxPoints()))
	return hex.EncodeToString(h.Sum(nil))
}

// fpEncoder writes the same unambiguous tagged byte stream as the config
// and campaign fingerprint encoders.
type fpEncoder struct {
	h   hash.Hash
	buf [9]byte
}

func (e *fpEncoder) num(v int64) {
	e.buf[0] = 'i'
	binary.BigEndian.PutUint64(e.buf[1:], uint64(v))
	e.h.Write(e.buf[:])
}

func (e *fpEncoder) f64(v float64) {
	e.buf[0] = 'f'
	binary.BigEndian.PutUint64(e.buf[1:], math.Float64bits(v))
	e.h.Write(e.buf[:])
}

func (e *fpEncoder) list(n int) {
	e.buf[0] = 'l'
	binary.BigEndian.PutUint64(e.buf[1:], uint64(int64(n)))
	e.h.Write(e.buf[:])
}

func (e *fpEncoder) str(s string) {
	e.buf[0] = 's'
	binary.BigEndian.PutUint64(e.buf[1:], uint64(len(s)))
	e.h.Write(e.buf[:])
	e.h.Write([]byte(s))
}

package synth

import (
	"strings"
	"testing"

	"stopwatchsim/internal/config"
)

// synthSystem builds a one-core EDF system with two tasks whose
// schedulability is analytic: EDF with implicit deadlines on a fully
// open window is schedulable iff total utilization is at most 1.
func synthSystem() *config.System {
	return &config.System{
		Name:      "synth-test",
		CoreTypes: []string{"cpu"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []config.Partition{{
			Name: "P1", Core: 0, Policy: config.EDF,
			Tasks: []config.Task{
				{Name: "a", Priority: 1, WCET: []int64{2}, Period: 10, Deadline: 10},
				{Name: "b", Priority: 1, WCET: []int64{5}, Period: 10, Deadline: 10},
			},
			Windows: []config.Window{{Start: 0, End: 10}},
		}},
	}
}

func oneDimSpace() *Space {
	return &Space{
		Name: "breakdown-a",
		Base: synthSystem(),
		Dims: []Dim{{Target: "wcet:P1.a", Min: 1, Max: 10}},
	}
}

func TestSpaceValidate(t *testing.T) {
	if err := oneDimSpace().Validate(); err != nil {
		t.Fatalf("valid space rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		mut  func(*Space)
		want string
	}{
		{"no name", func(s *Space) { s.Name = "" }, "needs a name"},
		{"no base", func(s *Space) { s.Base = nil }, "needs a base system"},
		{"no dims", func(s *Space) { s.Dims = nil }, "1–3 dims"},
		{"bad target", func(s *Space) { s.Dims[0].Target = "bogus:x" }, "unknown parameter target"},
		{"dangling task", func(s *Space) { s.Dims[0].Target = "wcet:P1.zz" }, "no task named"},
		{"below minimum", func(s *Space) { s.Dims[0].Min = 0 }, ">= 1"},
		{"empty interval", func(s *Space) { s.Dims[0].Max = s.Dims[0].Min }, "max"},
		{"misaligned span", func(s *Space) { s.Dims[0].Res = 4 }, "not a multiple of res"},
		{"repeated target", func(s *Space) {
			s.Dims = append(s.Dims, Dim{Target: "wcet:P1.a", Min: 1, Max: 4})
		}, "repeats target"},
		{"too many dims", func(s *Space) {
			s.Dims = append(s.Dims,
				Dim{Target: "wcet:P1.b", Min: 1, Max: 4},
				Dim{Target: "period:P1.a", Min: 10, Max: 20},
				Dim{Target: "deadline:P1.a", Min: 5, Max: 10})
		}, "1–3 dims"},
	} {
		s := oneDimSpace()
		tc.mut(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestSpaceFingerprint(t *testing.T) {
	a, b := oneDimSpace(), oneDimSpace()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical spaces hash differently")
	}
	fp := a.Fingerprint()
	if len(fp) != 64 || strings.Trim(fp, "0123456789abcdef") != "" {
		t.Fatalf("fingerprint is not hex sha256: %q", fp)
	}
	for _, tc := range []struct {
		name string
		mut  func(*Space)
	}{
		{"name", func(s *Space) { s.Name = "other" }},
		{"target", func(s *Space) { s.Dims[0].Target = "wcet:P1.b" }},
		{"min", func(s *Space) { s.Dims[0].Min = 2 }},
		{"max", func(s *Space) { s.Dims[0].Max = 9 }},
		{"res", func(s *Space) { s.Dims[0].Res = 0.5 }},
		{"max points", func(s *Space) { s.MaxPoints = 99 }},
		{"base", func(s *Space) { s.Base.Partitions[0].Tasks[0].Period = 20 }},
	} {
		s := oneDimSpace()
		tc.mut(s)
		if s.Fingerprint() == fp {
			t.Errorf("mutating %s does not move the fingerprint", tc.name)
		}
	}
	// Execution knobs are excluded: same exploration, different concurrency.
	s := oneDimSpace()
	s.Parallel = 9
	if s.Fingerprint() != fp {
		t.Error("Parallel moved the fingerprint; it must not")
	}
}

func TestLatticeGeometry(t *testing.T) {
	d := Dim{Target: "wcet:P1.a", Min: 1, Max: 10}
	if d.cells() != 9 {
		t.Fatalf("cells = %d, want 9", d.cells())
	}
	if d.value(0) != 1 || d.value(9) != 10 || d.value(4) != 5 {
		t.Fatalf("values = %g %g %g", d.value(0), d.value(9), d.value(4))
	}
	half := Dim{Target: "x", Min: 0, Max: 2, Res: 0.5}
	if half.cells() != 4 || half.value(3) != 1.5 {
		t.Fatalf("res 0.5: cells=%d value(3)=%g", half.cells(), half.value(3))
	}
	if k := idxKey([]int{3, 0, 12}); k != "3,0,12" {
		t.Fatalf("idxKey = %q", k)
	}
}

func TestMaterializePoint(t *testing.T) {
	s := &Space{
		Name: "2d",
		Base: synthSystem(),
		Dims: []Dim{
			{Target: "wcet:P1.a", Min: 1, Max: 10},
			{Target: "wcet:P1.b", Min: 1, Max: 10},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	sys, err := s.Materialize([]int{3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Partitions[0].Tasks[0].WCET[0]; got != 4 {
		t.Fatalf("a.WCET = %d, want 4", got)
	}
	if got := sys.Partitions[0].Tasks[1].WCET[0]; got != 7 {
		t.Fatalf("b.WCET = %d, want 7", got)
	}
	if s.Base.Partitions[0].Tasks[0].WCET[0] != 2 {
		t.Fatal("base mutated by materialization")
	}
	again, err := s.Materialize([]int{3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Fingerprint() != again.Fingerprint() {
		t.Fatal("same point materialized to different fingerprints")
	}
	if _, err := s.Materialize([]int{3}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := s.Materialize([]int{3, 99}); err == nil {
		t.Fatal("out-of-lattice coordinate accepted")
	}
}

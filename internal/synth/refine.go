package synth

import (
	"context"
	"fmt"
	"sync"
)

// The refinement. Both modes are exact at lattice resolution when
// feasibility is monotone in each dimension separately (either direction
// per dimension): the extreme verdicts over a box are then attained at
// its corners, so corner-unanimous boxes are classified whole. The 1-D
// mode is the degenerate case run as a breakdown bisection — O(log N)
// oracle runs against the O(N) of a grid sweep; the multi-D mode spends
// its runs on the boundary, leaving large uniform boxes classified by
// their corners alone.

// box is an axis-aligned sub-box in lattice coordinates: inclusive
// vertex index bounds, hi[i] > lo[i] in every dimension.
type box struct {
	lo, hi []int
}

// width returns the cell width along dimension i.
func (b *box) width(i int) int { return b.hi[i] - b.lo[i] }

// cells returns the box's cell volume.
func (b *box) cells() int64 {
	n := int64(1)
	for i := range b.lo {
		n *= int64(b.width(i))
	}
	return n
}

// atomic reports whether the box is a single lattice cell in every
// dimension — the refinement floor.
func (b *box) atomic() bool {
	for i := range b.lo {
		if b.width(i) > 1 {
			return false
		}
	}
	return true
}

// corners enumerates the box's 2^d corner index vectors in a fixed
// order (dimension 0 is the lowest bit).
func (b *box) corners() [][]int {
	d := len(b.lo)
	out := make([][]int, 0, 1<<d)
	for mask := 0; mask < 1<<d; mask++ {
		idx := make([]int, d)
		for i := 0; i < d; i++ {
			if mask&(1<<i) != 0 {
				idx[i] = b.hi[i]
			} else {
				idx[i] = b.lo[i]
			}
		}
		out = append(out, idx)
	}
	return out
}

// center returns the box's center snapped onto the lattice. For an
// atomic box this coincides with the low corner.
func (b *box) center() []int {
	idx := make([]int, len(b.lo))
	for i := range b.lo {
		idx[i] = b.lo[i] + b.width(i)/2
	}
	return idx
}

// refine runs the synthesis to a complete cover and builds the region.
func (s *Synthesis) refine(ctx context.Context, space *Space) (*Region, error) {
	r := &Region{
		SchemaVersion: regionSchemaVersion,
		ID:            s.snapshot().ID,
		Name:          space.Name,
		Dims:          append([]Dim(nil), space.Dims...),
		TotalCells:    space.totalCells(),
	}
	var err error
	if len(space.Dims) == 1 {
		err = s.refine1D(ctx, space, r)
	} else {
		err = s.refineBoxes(ctx, space, r)
	}
	if r.TotalCells > 0 {
		r.Coverage = float64(r.DecidedCells) / float64(r.TotalCells)
	}
	if err != nil {
		return r, err
	}
	return r, nil
}

// emit appends a classified box to the region and bumps the counters;
// witness is non-nil exactly for boundary boxes.
func (s *Synthesis) emit(space *Space, r *Region, b box, verdict string, witness *Witness) {
	cells := b.cells()
	r.Boxes = append(r.Boxes, Box{
		Min:     space.values(b.lo),
		Max:     space.values(b.hi),
		Verdict: verdict,
		Cells:   cells,
	})
	s.mu.Lock()
	switch verdict {
	case VerdictFeasible:
		s.state.Counts.BoxesFeasible++
		r.DecidedCells += cells
	case VerdictInfeasible:
		s.state.Counts.BoxesInfeasible++
		r.DecidedCells += cells
	case VerdictBoundary:
		s.state.Counts.BoxesBoundary++
		r.Boundary = append(r.Boundary, *witness)
	}
	s.mu.Unlock()
	s.eng.count(func(m *EngineMetrics) { m.BoxesClassified++ })
}

// refine1D is the exact breakdown mode: two end probes orient the
// monotone direction, a bisection pins the boundary to one lattice cell,
// and the cover is a decided prefix, the boundary cell, and a decided
// suffix. Works for both directions of monotonicity (feasibility
// shrinking or growing with the parameter value).
func (s *Synthesis) refine1D(ctx context.Context, space *Space, r *Region) error {
	n := space.Dims[0].cells()
	whole := box{lo: []int{0}, hi: []int{n}}

	f0, err := s.evaluate(ctx, space, []int{0})
	if err != nil {
		return err
	}
	fn, err := s.evaluate(ctx, space, []int{n})
	if err != nil {
		return err
	}
	if f0 == fn {
		// Uniform ends: under monotonicity the whole interval matches.
		v := VerdictInfeasible
		if f0 {
			v = VerdictFeasible
		}
		s.emit(space, r, whole, v, nil)
		return nil
	}

	// Invariant: the verdict at lo differs from the verdict at hi; shrink
	// to adjacent lattice values.
	lo, hi := 0, n
	for hi-lo > 1 {
		if err := ctx.Err(); err != nil {
			return err
		}
		mid := lo + (hi-lo)/2
		fm, err := s.evaluate(ctx, space, []int{mid})
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.state.Counts.BisectIterations++
		s.mu.Unlock()
		s.eng.count(func(m *EngineMetrics) { m.BisectIterations++ })
		if fm == f0 {
			lo = mid
		} else {
			hi = mid
		}
	}

	loVerdict, hiVerdict := VerdictFeasible, VerdictInfeasible
	w := Witness{Feasible: space.values([]int{lo}), Infeasible: space.values([]int{hi})}
	if !f0 {
		loVerdict, hiVerdict = VerdictInfeasible, VerdictFeasible
		w = Witness{Feasible: space.values([]int{hi}), Infeasible: space.values([]int{lo})}
	}
	if lo > 0 {
		s.emit(space, r, box{lo: []int{0}, hi: []int{lo}}, loVerdict, nil)
	}
	s.emit(space, r, box{lo: []int{lo}, hi: []int{hi}}, VerdictBoundary, &w)
	if hi < n {
		s.emit(space, r, box{lo: []int{hi}, hi: []int{n}}, hiVerdict, nil)
	}
	return nil
}

// refineBoxes is the multi-dimensional mode: a breadth-first wave of
// boxes, each wave's corner and center probes evaluated concurrently
// through the pool, each box then classified whole, split, or declared
// an atomic boundary cell.
func (s *Synthesis) refineBoxes(ctx context.Context, space *Space, r *Region) error {
	d := len(space.Dims)
	whole := box{lo: make([]int, d), hi: make([]int, d)}
	for i := range space.Dims {
		whole.hi[i] = space.Dims[i].cells()
	}
	queue := []box{whole}

	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		// Evaluate the whole wave's probes in one concurrent batch:
		// corners shared between sibling boxes (split planes) dedup here.
		var probes [][]int
		for i := range queue {
			probes = append(probes, queue[i].corners()...)
			probes = append(probes, queue[i].center())
		}
		if err := s.evaluateBatch(ctx, space, probes); err != nil {
			return err
		}

		var next []box
		for _, b := range queue {
			corners := b.corners()
			feasible, infeasible := 0, 0
			for _, c := range corners {
				f, ok := s.feasibleAt(c)
				if !ok {
					return fmt.Errorf("synth: internal: corner %s not evaluated", idxKey(c))
				}
				if f {
					feasible++
				} else {
					infeasible++
				}
			}
			fc, ok := s.feasibleAt(b.center())
			if !ok {
				return fmt.Errorf("synth: internal: center %s not evaluated", idxKey(b.center()))
			}
			switch {
			case infeasible == 0 && fc:
				s.emit(space, r, b, VerdictFeasible, nil)
			case feasible == 0 && !fc:
				s.emit(space, r, b, VerdictInfeasible, nil)
			case b.atomic():
				// Mixed corners at single-cell width: the boundary passes
				// through this cell. The witness is the first feasible and
				// first infeasible corner in enumeration order.
				var w Witness
				for _, c := range corners {
					f, _ := s.feasibleAt(c)
					if f && w.Feasible == nil {
						w.Feasible = space.values(c)
					}
					if !f && w.Infeasible == nil {
						w.Infeasible = space.values(c)
					}
				}
				s.emit(space, r, b, VerdictBoundary, &w)
			default:
				// Split the widest dimension (lowest index on ties) at the
				// lattice midpoint; children share the split plane, so its
				// corners are evaluated once.
				dim := 0
				for i := 1; i < d; i++ {
					if b.width(i) > b.width(dim) {
						dim = i
					}
				}
				mid := b.lo[dim] + b.width(dim)/2
				a, c := box{lo: b.lo, hi: append([]int(nil), b.hi...)}, box{lo: append([]int(nil), b.lo...), hi: b.hi}
				a.hi[dim] = mid
				c.lo[dim] = mid
				next = append(next, a, c)
				s.mu.Lock()
				s.state.Counts.Splits++
				s.mu.Unlock()
				s.eng.count(func(m *EngineMetrics) { m.Splits++ })
			}
		}
		queue = next
	}
	return nil
}

// evaluateBatch evaluates a set of lattice points with bounded
// concurrency, deduplicating against each other and against already
// known verdicts. The first error cancels the rest of the batch.
func (s *Synthesis) evaluateBatch(ctx context.Context, space *Space, pts [][]int) error {
	seen := make(map[string]bool, len(pts))
	var work [][]int
	for _, p := range pts {
		k := idxKey(p)
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := s.feasibleAt(p); ok {
			continue
		}
		work = append(work, p)
	}
	if len(work) == 0 {
		return nil
	}
	par := space.parallel()
	if par > len(work) {
		par = len(work)
	}

	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	feed := make(chan []int)
	for i := 0; i < par; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range feed {
				if _, err := s.evaluate(bctx, space, p); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
				}
			}
		}()
	}
	for _, p := range work {
		select {
		case feed <- p:
		case <-bctx.Done():
		}
		if bctx.Err() != nil {
			break
		}
	}
	close(feed)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

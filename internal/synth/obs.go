package synth

// The synthesis ops view, mirroring the campaign's: a live event stream
// (the body of GET /v1/synth/{id}/events), budget-coverage/ETA
// accounting from the points-duration histogram, and the straggler
// report embedded in synthesis status. Publishing never blocks point
// evaluation; a slow subscriber loses events.

import (
	"sort"
	"time"

	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/obs"
)

// Event is one record on a synthesis's live event stream.
type Event struct {
	// Type is "point" (a point settled), "quarantine" (a point failed —
	// for a synthesis that aborts the run) or "status" (terminal state).
	Type   string `json:"type"`
	Synth  string `json:"synth"`
	Status string `json:"status,omitempty"`

	// Point fields, set on point/quarantine events.
	Point    string `json:"point,omitempty"` // idxKey form
	Source   string `json:"source,omitempty"`
	Feasible bool   `json:"feasible,omitempty"`
	Trace    string `json:"traceparent,omitempty"`

	// Progress: points evaluated so far against the space's evaluation
	// budget (refinement is adaptive, so the budget is the only known
	// total), plus the remaining-budget estimate from the points
	// histogram.
	Done        int     `json:"done"`
	Total       int     `json:"total,omitempty"`
	CoveragePct float64 `json:"coverage_pct,omitempty"`
	EtaMS       int64   `json:"eta_ms,omitempty"`
}

// Subscribe attaches a live event subscriber to a synthesis, returning
// its channel and a cancel function. The channel is closed by cancel,
// not by completion — subscribers see the terminal "status" event and
// detach themselves.
func (e *Engine) Subscribe(id string) (<-chan any, func(), bool) {
	e.mu.Lock()
	s := e.synths[id]
	e.mu.Unlock()
	if s == nil {
		return nil, nil, false
	}
	ch, cancel := s.hub.Subscribe(16)
	return ch, cancel, true
}

// StatusEvent builds a synthetic status event from the synthesis's
// current state — the opening record of every SSE subscription, so a
// subscriber to an already-terminal synthesis still sees its status.
func (e *Engine) StatusEvent(id string) (Event, bool) {
	e.mu.Lock()
	s := e.synths[id]
	e.mu.Unlock()
	if s == nil {
		return Event{}, false
	}
	s.mu.Lock()
	ev := Event{Type: "status", Status: s.state.Status}
	s.progressLocked(&ev)
	s.mu.Unlock()
	return ev, true
}

// progressLocked fills the progress fields of ev. Callers hold s.mu.
func (s *Synthesis) progressLocked(ev *Event) {
	ev.Synth = s.state.ID
	ev.Done = s.state.Counts.Evaluations
	total := s.state.Space.maxPoints()
	if total <= 0 {
		return
	}
	ev.Total = total
	ev.CoveragePct = 100 * float64(ev.Done) / float64(total)
	if ev.Done >= total {
		return
	}
	if snap := s.durs.Snapshot(); snap.Count > 0 {
		mean := float64(snap.Sum) / float64(snap.Count)
		ev.EtaMS = int64(mean * float64(total-ev.Done) / float64(time.Millisecond))
	}
}

// publishPoint pushes a settled point onto the stream.
func (s *Synthesis) publishPoint(pr *PointRec) {
	if s.hub.Subscribers() == 0 {
		return
	}
	ev := Event{
		Type:     "point",
		Point:    idxKey(pr.Idx),
		Source:   pr.Source,
		Feasible: pr.Feasible,
		Trace:    pr.Trace,
	}
	s.mu.Lock()
	s.progressLocked(&ev)
	s.mu.Unlock()
	s.hub.Publish(ev)
}

// publishFailure pushes a failed (synthesis-aborting) point.
func (s *Synthesis) publishFailure(idx []int, tc obs.TraceContext) {
	if s.hub.Subscribers() == 0 {
		return
	}
	ev := Event{Type: "quarantine", Point: idxKey(idx)}
	if tc.Valid() {
		ev.Trace = tc.Traceparent()
	}
	s.mu.Lock()
	s.progressLocked(&ev)
	s.mu.Unlock()
	s.hub.Publish(ev)
}

// publishStatus pushes the synthesis's terminal state onto the stream.
func (s *Synthesis) publishStatus(status string) {
	if s.hub.Subscribers() == 0 {
		return
	}
	ev := Event{Type: "status", Status: status}
	s.mu.Lock()
	s.progressLocked(&ev)
	s.mu.Unlock()
	s.hub.Publish(ev)
}

// maxStragglers bounds the straggler report.
const maxStragglers = 5

// noteStragglerLocked folds one computed point into the top-N straggler
// report, keeping it sorted worst-first. Callers hold s.mu.
func (s *Synthesis) noteStragglerLocked(pr *PointRec, done jobs.Job) {
	if pr.Source != SourceComputed {
		return
	}
	str := Straggler{Idx: pr.Idx, Values: pr.Values, Trace: pr.Trace, ElapsedNS: pr.ElapsedNS}
	if done.Outcome != nil && done.Outcome.Telemetry != nil {
		str.Phases = make(map[string]int64)
		for _, ph := range done.Outcome.Telemetry.Phases {
			if ph.Depth == 0 {
				str.Phases[ph.Name] += ph.DurNS
			}
		}
	}
	st := s.state.Stragglers
	i := sort.Search(len(st), func(i int) bool { return st[i].ElapsedNS < str.ElapsedNS })
	if i >= maxStragglers {
		return
	}
	st = append(st, Straggler{})
	copy(st[i+1:], st[i:])
	st[i] = str
	if len(st) > maxStragglers {
		st = st[:maxStragglers]
	}
	s.state.Stragglers = st
}

// pointTrace mints one point's child trace context, zero when the
// synthesis is untraced.
func (s *Synthesis) pointTrace() obs.TraceContext {
	if s.trace.Valid() {
		return s.trace.Child()
	}
	return obs.TraceContext{}
}

// closePointSpan records the point's span — submit through record —
// under the synthesis's root. No-op for untraced points.
func (s *Synthesis) closePointSpan(tc obs.TraceContext, idx []int, start time.Time) {
	if tr := s.eng.pool.Tracer(); tr != nil && tc.Valid() {
		tr.Record(tc, s.trace.SpanID, "synth.point", idxKey(idx),
			start.UnixNano(), time.Since(start).Nanoseconds())
	}
}

// armTraceLocked mints (or, on resume, re-adopts) the synthesis's root
// trace context when the pool traces. Callers hold e.mu; the synthesis
// goroutine is not yet running.
func (s *Synthesis) armTraceLocked() {
	if s.eng.pool.Tracer() == nil {
		return
	}
	if tc, ok := obs.ParseTraceparent(s.state.Trace); ok {
		s.trace = tc
		return
	}
	s.trace = obs.NewTrace()
	s.state.Trace = s.trace.Traceparent()
}

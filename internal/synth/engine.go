package synth

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/fault"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/store"
)

// Engine errors.
var (
	// ErrUnknownSynthesis is returned for IDs the registry does not hold.
	ErrUnknownSynthesis = errors.New("synth: unknown synthesis")
)

// pointRetries and pointRetryBackoff bound re-attempts of a failed oracle
// run before the synthesis aborts. Unlike a campaign grid — where one
// quarantined point leaves a hole in an otherwise useful map — a region
// derived around a missing verdict would be silently wrong, so synthesis
// retries briefly and then fails loudly.
const (
	pointRetries      = 2
	pointRetryBackoff = 50 * time.Millisecond
)

// Engine orchestrates syntheses over a shared jobs.Pool, checkpointing
// state to an artifact store after every evaluated point. The store may
// be nil, in which case syntheses run memory-only (no resume across
// restarts). One Engine serves many concurrent syntheses; each runs in
// its own goroutine and fans its point evaluations through the pool.
type Engine struct {
	pool *jobs.Pool
	st   *store.Store
	lg   *slog.Logger

	mu      sync.Mutex
	synths  map[string]*Synthesis
	metrics EngineMetrics
}

// EngineMetrics are the synthesis-level telemetry counters, exposed by
// cmd/saserve as the saserve_synth_* metric families.
type EngineMetrics struct {
	Started  int64 `json:"started"`
	Resumed  int64 `json:"resumed"`
	Done     int64 `json:"done"`
	Failed   int64 `json:"failed"`
	Canceled int64 `json:"canceled"`

	PointsComputed    int64 `json:"points_computed"`
	PointsCacheMemory int64 `json:"points_cache_memory"`
	PointsCacheDisk   int64 `json:"points_cache_disk"`
	PointsCheckpoint  int64 `json:"points_checkpoint"`

	BoxesClassified  int64 `json:"boxes_classified"`
	Splits           int64 `json:"splits"`
	BisectIterations int64 `json:"bisect_iterations"`
}

// Synthesis is one registered region synthesis.
type Synthesis struct {
	eng *Engine

	mu        sync.Mutex
	state     *State
	completed map[string]*PointRec // config fingerprint → recorded result
	verdict   map[string]bool      // idxKey → feasible, the refiner's oracle view

	// Ops view: the live event hub, the root trace context (zero when the
	// pool does not trace) and the settled-point duration histogram
	// feeding the ETA. trace is set before launch and read-only after.
	hub   obs.EventHub
	trace obs.TraceContext
	durs  *obs.Histogram

	cancel context.CancelFunc
	done   chan struct{}
}

// NewEngine creates an engine over the pool, checkpointing to st (nil
// disables persistence). The logger may be nil.
func NewEngine(pool *jobs.Pool, st *store.Store, lg *slog.Logger) *Engine {
	return &Engine{pool: pool, st: st, lg: lg, synths: make(map[string]*Synthesis)}
}

// StoreKind returns the store kind synthesis checkpoints are written
// under; stores backing an Engine should pin it.
func StoreKind() string { return stateKind }

// Start registers and launches the synthesis described by space,
// returning a snapshot of its state. Syntheses are content-addressed:
// starting a space whose fingerprint matches a live synthesis returns
// that synthesis, and one matching a checkpoint in the store resumes or
// returns it (completed syntheses are served from their stored state
// without re-running anything).
func (e *Engine) Start(space *Space) (State, error) {
	if err := space.Validate(); err != nil {
		return State{}, err
	}
	id := space.Fingerprint()

	e.mu.Lock()
	defer e.mu.Unlock()
	if s := e.synths[id]; s != nil {
		return s.snapshot(), nil
	}
	st := e.loadState(id)
	resumed := st != nil
	if st == nil {
		st = &State{
			Version: stateVersion,
			ID:      id,
			Name:    space.Name,
			Status:  StatusRunning,
			Space:   space,
		}
	}
	s := e.registerLocked(st)
	if st.Status == StatusRunning {
		if resumed {
			e.metrics.Resumed++
		} else {
			e.metrics.Started++
		}
		e.launchLocked(s)
	}
	return s.snapshot(), nil
}

// ResumeAll loads every synthesis checkpoint from the store into the
// registry and relaunches the ones a crash interrupted (status still
// "running"). It returns the IDs of relaunched syntheses. Syntheses that
// had finished are registered inert so their state and region remain
// queryable after a restart.
func (e *Engine) ResumeAll() []string {
	if e.st == nil {
		return nil
	}
	var resumed []string
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, id := range e.st.Keys(stateKind) {
		if e.synths[id] != nil {
			continue
		}
		st := e.loadState(id)
		if st == nil {
			continue
		}
		s := e.registerLocked(st)
		if st.Status == StatusRunning {
			e.metrics.Resumed++
			e.launchLocked(s)
			resumed = append(resumed, id)
		}
	}
	sort.Strings(resumed)
	return resumed
}

// RegisterAll loads every synthesis checkpoint into the registry without
// relaunching any — the read-only counterpart of ResumeAll, for status
// and export tooling. Checkpoints still marked running register inert;
// Wait on them would block, so callers should only inspect state.
func (e *Engine) RegisterAll() {
	if e.st == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, id := range e.st.Keys(stateKind) {
		if e.synths[id] != nil {
			continue
		}
		if st := e.loadState(id); st != nil {
			s := e.registerLocked(st)
			if st.Status == StatusRunning {
				// Not launched: mark done so Wait callers cannot hang on a
				// synthesis nobody is running.
				close(s.done)
			}
		}
	}
}

// loadState reads a checkpoint, nil when absent, unreadable, or a
// foreign schema version.
func (e *Engine) loadState(id string) *State {
	if e.st == nil {
		return nil
	}
	var st State
	ok, err := e.st.Get(stateKind, id, &st)
	if err != nil || !ok || st.Version != stateVersion || st.Space == nil {
		return nil
	}
	return &st
}

// registerLocked adds a synthesis for st to the registry, rebuilding the
// fingerprint and verdict indices from the recorded points. Terminal
// states get an already-closed done channel. Callers hold e.mu.
func (e *Engine) registerLocked(st *State) *Synthesis {
	s := &Synthesis{
		eng:       e,
		state:     st,
		completed: make(map[string]*PointRec, len(st.Points)),
		verdict:   make(map[string]bool, len(st.Points)),
		durs:      obs.NewHistogram(0, 1, nil),
		done:      make(chan struct{}),
	}
	for i := range st.Points {
		pr := &st.Points[i]
		s.completed[pr.Fingerprint] = pr
		s.verdict[idxKey(pr.Idx)] = pr.Feasible
	}
	if st.Status != StatusRunning {
		close(s.done)
	}
	e.synths[st.ID] = s
	return s
}

// launchLocked starts the synthesis goroutine. Callers hold e.mu.
func (e *Engine) launchLocked(s *Synthesis) {
	s.armTraceLocked()
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	go s.run(ctx)
}

// Get returns a snapshot of the synthesis's state.
func (e *Engine) Get(id string) (State, bool) {
	e.mu.Lock()
	s := e.synths[id]
	e.mu.Unlock()
	if s == nil {
		return State{}, false
	}
	return s.snapshot(), true
}

// List returns snapshots of all registered syntheses, ordered by ID.
func (e *Engine) List() []State {
	e.mu.Lock()
	ss := make([]*Synthesis, 0, len(e.synths))
	for _, s := range e.synths {
		ss = append(ss, s)
	}
	e.mu.Unlock()
	out := make([]State, len(ss))
	for i, s := range ss {
		out[i] = s.snapshot()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Cancel requests cancellation of a running synthesis. It returns false
// when the synthesis is unknown or already terminal.
func (e *Engine) Cancel(id string) bool {
	e.mu.Lock()
	s := e.synths[id]
	e.mu.Unlock()
	if s == nil {
		return false
	}
	s.mu.Lock()
	running := s.state.Status == StatusRunning && s.cancel != nil
	s.mu.Unlock()
	if running {
		s.cancel()
	}
	return running
}

// Wait blocks until the synthesis reaches a terminal state or ctx is
// done.
func (e *Engine) Wait(ctx context.Context, id string) (State, error) {
	e.mu.Lock()
	s := e.synths[id]
	e.mu.Unlock()
	if s == nil {
		return State{}, ErrUnknownSynthesis
	}
	select {
	case <-s.done:
	case <-ctx.Done():
		return State{}, ctx.Err()
	}
	return s.snapshot(), nil
}

// Metrics returns a snapshot of the synthesis-level counters.
func (e *Engine) Metrics() EngineMetrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.metrics
}

func (e *Engine) count(f func(*EngineMetrics)) {
	e.mu.Lock()
	f(&e.metrics)
	e.mu.Unlock()
}

func (s *Synthesis) snapshot() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.clone()
}

// checkpoint persists the current state (after stamping UpdatedAt) so a
// crash at any later instant resumes from here. Persistence failures are
// logged, not fatal: the synthesis still completes in memory and the
// previous checkpoint stays authoritative for resume.
func (s *Synthesis) checkpoint() {
	s.mu.Lock()
	s.state.UpdatedAt = time.Now().UTC().Format(time.RFC3339Nano)
	snap := s.state.clone()
	s.mu.Unlock()
	if s.eng.st == nil {
		return
	}
	retries, err := fault.DefaultStoreRetry.Do(context.Background(), nil, func() error {
		return s.eng.st.Put(stateKind, snap.ID, &snap)
	})
	s.eng.pool.Resilience().StoreRetries.Add(int64(retries))
	if err != nil && s.eng.lg != nil {
		s.eng.lg.Warn("synth checkpoint failed", "synth", snap.ID, "error", err.Error())
	}
}

// run executes the refinement to a terminal state. Refinement-derived
// state (region, box counters) is reset first: a resumed synthesis
// re-derives the deterministic refinement from scratch, with every
// recorded point answering from the checkpoint instead of the pool.
func (s *Synthesis) run(ctx context.Context) {
	defer close(s.done)
	t0 := time.Now()
	s.mu.Lock()
	if s.state.StartedAt == "" {
		s.state.StartedAt = time.Now().UTC().Format(time.RFC3339Nano)
	}
	space := s.state.Space
	s.state.Region = nil
	s.state.Counts.BoxesFeasible = 0
	s.state.Counts.BoxesInfeasible = 0
	s.state.Counts.BoxesBoundary = 0
	s.state.Counts.Splits = 0
	s.state.Counts.BisectIterations = 0
	s.mu.Unlock()
	s.checkpoint()
	lg := s.logger()
	if lg != nil {
		lg.Info("synthesis running", "dims", len(space.Dims), "points_done", len(s.snapshot().Points))
	}

	region, err := s.refine(ctx, space)

	status := StatusDone
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		status = StatusCanceled
	default:
		status = StatusFailed
	}
	s.mu.Lock()
	s.state.Status = status
	if err != nil && status == StatusFailed {
		s.state.Error = err.Error()
	}
	if region != nil {
		region.Status = status
		region.Error = s.state.Error
		region.Counts = s.state.Counts
		s.state.Region = region
	}
	s.mu.Unlock()
	s.checkpoint()
	if tr := s.eng.pool.Tracer(); tr != nil && s.trace.Valid() {
		// The synthesis's root span: parentless, covering this process's
		// share of the refinement (a resumed synthesis records one per leg).
		tr.Record(s.trace, [8]byte{}, "synth", "refine", t0.UnixNano(), time.Since(t0).Nanoseconds())
	}
	s.publishStatus(status)
	s.eng.count(func(m *EngineMetrics) {
		switch status {
		case StatusDone:
			m.Done++
		case StatusFailed:
			m.Failed++
		case StatusCanceled:
			m.Canceled++
		}
	})
	if lg != nil {
		if err != nil {
			lg.Warn("synthesis finished", "status", status, "error", err.Error())
		} else {
			lg.Info("synthesis finished", "status", status,
				"points", len(s.snapshot().Points), "coverage", region.Coverage)
		}
	}
}

func (s *Synthesis) logger() *slog.Logger {
	if s.eng.lg == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.lg.With(slog.String("synth", s.state.ID), slog.String("name", s.state.Name))
}

// feasibleAt returns the recorded verdict at a lattice point, if any.
func (s *Synthesis) feasibleAt(idx []int) (bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.verdict[idxKey(idx)]
	return f, ok
}

// evaluate answers one lattice point: from the verdict map (already
// evaluated this run), the resumed checkpoint (by configuration
// fingerprint), or through the pool. Failed runs are retried briefly and
// then abort the synthesis — a region derived around a hole would be
// silently wrong.
func (s *Synthesis) evaluate(ctx context.Context, space *Space, idx []int) (bool, error) {
	if f, ok := s.feasibleAt(idx); ok {
		return f, nil
	}
	sys, err := space.Materialize(idx)
	if err != nil {
		return false, err
	}
	fp := sys.Fingerprint()
	if pr, ok := s.checkpointHit(space, idx, fp); ok {
		return pr.Feasible, nil
	}

	s.mu.Lock()
	over := s.state.Counts.Evaluations >= space.maxPoints()
	s.mu.Unlock()
	if over {
		return false, fmt.Errorf("synth: evaluation budget of %d points exhausted", space.maxPoints())
	}

	// Every point gets a child span of the synthesis's root trace (when
	// the pool traces); the job it submits links its submit/queue/run/
	// engine-phase spans under it.
	tc := s.pointTrace()
	start := time.Now()
	done, err := s.attempt(ctx, sys, tc)
	if err != nil {
		return false, err
	}
	for attempt := 0; done.Status == jobs.StatusFailed && attempt < pointRetries; attempt++ {
		s.eng.pool.Resilience().PointRetries.Add(1)
		if lg := s.logger(); lg != nil {
			msg := "run failed"
			if done.Err != nil {
				msg = done.Err.Error()
			}
			lg.Warn("point attempt failed; retrying", "point", idxKey(idx), "attempt", attempt+1, "error", msg)
		}
		if err := fault.SleepContext(ctx, pointRetryBackoff<<attempt); err != nil {
			return false, err
		}
		if done, err = s.attempt(ctx, sys, tc); err != nil {
			return false, err
		}
	}
	feasible, err := s.record(space, idx, fp, done, tc)
	s.closePointSpan(tc, idx, start)
	return feasible, err
}

// attempt runs one evaluation attempt through the pool, with the
// synthesis fault site applied first. When the wait dies — the synthesis
// was canceled or the engine is shutting down — the cancellation is
// propagated into the pool so the in-flight job stops promptly.
func (s *Synthesis) attempt(ctx context.Context, sys *config.System, tc obs.TraceContext) (jobs.Job, error) {
	if f := s.eng.pool.Faults().Hit(fault.SiteCampaignPoint); f != nil {
		return jobs.Job{Status: jobs.StatusFailed, Err: f.Err()}, nil
	}
	jb, err := s.submit(ctx, sys, tc)
	if err != nil {
		return jobs.Job{}, err
	}
	done, err := s.eng.pool.Wait(ctx, jb.ID)
	if err != nil {
		s.eng.pool.Cancel(jb.ID)
		return jobs.Job{}, err
	}
	return done, nil
}

// checkpointHit answers a point whose configuration fingerprint is
// already recorded — from the resumed checkpoint, or from an earlier
// point of this run whose target values aliased to the same
// configuration — skipping the pool entirely. A hit at lattice
// coordinates not yet recorded is appended as a SourceCheckpoint point.
func (s *Synthesis) checkpointHit(space *Space, idx []int, fp string) (*PointRec, bool) {
	key := idxKey(idx)
	s.mu.Lock()
	pr := s.completed[fp]
	var fresh bool
	if pr != nil {
		prCopy := *pr
		prCopy.Idx = append([]int(nil), idx...)
		prCopy.Values = space.values(idx)
		if _, seen := s.verdict[key]; !seen {
			fresh = true
			prCopy.Source = SourceCheckpoint
			prCopy.ElapsedNS = 0
			s.state.Points = append(s.state.Points, prCopy)
			s.verdict[key] = prCopy.Feasible
			s.state.Counts.Evaluations++
			s.state.Counts.Checkpoint++
		}
		pr = &prCopy
	}
	s.mu.Unlock()
	if pr == nil {
		return nil, false
	}
	s.eng.count(func(m *EngineMetrics) { m.PointsCheckpoint++ })
	if fresh {
		s.checkpoint()
		s.publishPoint(pr)
	}
	return pr, true
}

// record translates a finished job into the point's verdict, appends it
// to the state, checkpoints, and bumps the counters. Cancellation
// surfaces as context.Canceled; a still-failed job (retries exhausted)
// aborts the synthesis.
func (s *Synthesis) record(space *Space, idx []int, fp string, done jobs.Job, tc obs.TraceContext) (bool, error) {
	switch done.Status {
	case jobs.StatusDone:
	case jobs.StatusCanceled:
		return false, context.Canceled
	default:
		msg := "run failed"
		if done.Err != nil {
			msg = done.Err.Error()
		}
		s.publishFailure(idx, tc)
		return false, fmt.Errorf("synth: point %s failed: %s", idxKey(idx), msg)
	}
	pr := PointRec{
		Idx:         append([]int(nil), idx...),
		Values:      space.values(idx),
		Fingerprint: fp,
		Feasible:    done.Outcome.Verdict == jobs.VerdictSchedulable,
		ElapsedNS:   int64(done.Outcome.Elapsed),
		Postmortem:  done.PostmortemKey,
	}
	if tc.Valid() {
		pr.Trace = tc.Traceparent()
	}
	switch {
	case done.DiskHit:
		pr.Source = SourceDisk
	case done.CacheHit:
		pr.Source = SourceMemory
	default:
		pr.Source = SourceComputed
	}
	s.durs.Observe(time.Duration(pr.ElapsedNS))

	s.mu.Lock()
	s.noteStragglerLocked(&pr, done)
	s.state.Points = append(s.state.Points, pr)
	rec := &s.state.Points[len(s.state.Points)-1]
	s.completed[fp] = rec
	s.verdict[idxKey(idx)] = pr.Feasible
	s.state.Counts.Evaluations++
	switch pr.Source {
	case SourceComputed:
		s.state.Counts.EngineRuns++
	case SourceMemory:
		s.state.Counts.CacheMemory++
	case SourceDisk:
		s.state.Counts.CacheDisk++
	}
	s.mu.Unlock()
	s.eng.count(func(m *EngineMetrics) {
		switch pr.Source {
		case SourceComputed:
			m.PointsComputed++
		case SourceMemory:
			m.PointsCacheMemory++
		case SourceDisk:
			m.PointsCacheDisk++
		}
	})
	s.checkpoint()
	s.publishPoint(&pr)
	return pr.Feasible, nil
}

// submit enqueues the run, backing off briefly when the pool signals
// backpressure (syntheses yield to interactive submissions rather than
// failing).
func (s *Synthesis) submit(ctx context.Context, sys *config.System, tc obs.TraceContext) (jobs.Job, error) {
	for {
		jb, err := s.eng.pool.SubmitTraced(jobs.ConfigRun{Sys: sys}, s.eng.pool.DefaultBudget(), tc)
		switch {
		case err == nil:
			return jb, nil
		case errors.Is(err, jobs.ErrQueueFull):
			select {
			case <-ctx.Done():
				return jobs.Job{}, ctx.Err()
			case <-time.After(10 * time.Millisecond):
			}
		default:
			return jobs.Job{}, err
		}
	}
}

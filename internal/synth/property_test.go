package synth

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"stopwatchsim/internal/campaign"
	"stopwatchsim/internal/config"
	"stopwatchsim/internal/jobs"
)

// The grid-consistency property: a region synthesized by box refinement
// must agree with a brute-force campaign grid at the same resolution.
// Every grid point lies in one or more boxes of the cover (points on a
// shared face lie in two); for each decided box containing it, the
// point's grid verdict must match the box verdict — boundary boxes make
// no claim. And the synthesis must get there with fewer engine runs than
// the exhaustive grid.

// loadExample reads a system XML from the examples tree.
func loadExample(t *testing.T, rel string) *config.System {
	t.Helper()
	f, err := os.Open(filepath.Join("..", "..", rel))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sys, err := config.ReadXML(f)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// checkGridConsistency asserts every campaign grid point against the
// region's boxes and returns how many points were covered by at least
// one decided box.
func checkGridConsistency(t *testing.T, r *Region, axes []string, points []campaign.PointResult) int {
	t.Helper()
	decided := 0
	for _, p := range points {
		vals := make([]float64, len(axes))
		for i, a := range axes {
			v, ok := p.Point[a]
			if !ok {
				t.Fatalf("grid point %v lacks axis %q", p.Point, a)
			}
			vals[i] = v
		}
		contained, claimed := 0, false
		for _, b := range r.Boxes {
			inside := true
			for i := range vals {
				if vals[i] < b.Min[i] || vals[i] > b.Max[i] {
					inside = false
					break
				}
			}
			if !inside {
				continue
			}
			contained++
			if b.Verdict == VerdictBoundary {
				continue
			}
			claimed = true
			if want := b.Verdict == VerdictFeasible; p.Schedulable != want {
				t.Errorf("grid point %v schedulable=%v contradicts %s box %v-%v",
					vals, p.Schedulable, b.Verdict, b.Min, b.Max)
			}
		}
		if contained == 0 {
			t.Errorf("grid point %v lies in no box of the cover", vals)
		}
		if claimed {
			decided++
		}
	}
	return decided
}

// runGrid runs a brute-force campaign grid and returns its terminal state.
func runGrid(t *testing.T, pool *jobs.Pool, spec *campaign.Spec) campaign.State {
	t.Helper()
	eng := campaign.NewEngine(pool, nil, nil)
	st, err := eng.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(t.Context(), 5*time.Minute)
	defer cancel()
	final, err := eng.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != campaign.StatusDone {
		t.Fatalf("grid status = %s (%s)", final.Status, final.Error)
	}
	return final
}

// TestGridConsistencyQuickstart: 1-D wcet_pct breakdown on the quickstart
// example versus the exhaustive sweep at the same 10% resolution. The
// quickstart critical point is 166%, so the boundary cell is [160, 170].
func TestGridConsistencyQuickstart(t *testing.T) {
	base := loadExample(t, "examples/quickstart/quickstart.xml")
	pool := jobs.New(jobs.Options{Workers: 4})
	defer pool.Close()

	space := &Space{
		Name: "quickstart-wcet-pct",
		Base: base,
		Dims: []Dim{{Target: "wcet_pct", Min: 100, Max: 300, Res: 10}},
	}
	eng := NewEngine(pool, nil, nil)
	final := runSynth(t, eng, space)
	if final.Status != StatusDone {
		t.Fatalf("synth status = %s (%s)", final.Status, final.Error)
	}
	r := final.Region

	grid := runGrid(t, pool, &campaign.Spec{
		Name:     "quickstart-wcet-pct-grid",
		Strategy: campaign.StrategyGrid,
		Base:     base,
		Axes:     []campaign.Axis{{Param: campaign.ParamWCETPct, Min: 100, Max: 300, Step: 10}},
		Parallel: 4,
	})
	if len(grid.Points) != 21 {
		t.Fatalf("grid evaluated %d points, want 21", len(grid.Points))
	}
	checkGridConsistency(t, r, []string{campaign.ParamWCETPct}, grid.Points)

	// The known critical point pins the boundary cell.
	foundBoundary := false
	for _, b := range r.Boxes {
		if b.Verdict == VerdictBoundary {
			foundBoundary = true
			if b.Min[0] != 160 || b.Max[0] != 170 {
				t.Errorf("boundary cell [%g, %g], want [160, 170]", b.Min[0], b.Max[0])
			}
		}
	}
	if !foundBoundary {
		t.Error("no boundary box in a space straddling the critical point")
	}
	if r.Counts.Evaluations >= len(grid.Points) {
		t.Errorf("synth used %d evaluations, grid %d: no saving", r.Counts.Evaluations, len(grid.Points))
	}
}

// TestGridConsistencyGenericEDF: the 2-D (WCET1, WCET2) synthesis of the
// IMITATOR generic-EDF port versus the exhaustive 16×48 campaign grid at
// the same resolution — the suite's acceptance bar: every grid point
// consistent with its containing boxes, ≥95% coverage, and measurably
// fewer engine runs than the grid.
func TestGridConsistencyGenericEDF(t *testing.T) {
	if testing.Short() {
		t.Skip("768-point brute-force grid")
	}
	base := loadExample(t, "examples/imi/generic-edf.xml")
	pool := jobs.New(jobs.Options{Workers: 4})
	defer pool.Close()

	space := &Space{
		Name: "generic-edf-wcet12",
		Base: base,
		Dims: []Dim{
			{Target: "wcet:APP.t1", Min: 1, Max: 16},
			{Target: "wcet:APP.t2", Min: 1, Max: 48},
		},
		Parallel: 4,
	}
	eng := NewEngine(pool, nil, nil)
	final := runSynth(t, eng, space)
	if final.Status != StatusDone {
		t.Fatalf("synth status = %s (%s)", final.Status, final.Error)
	}
	r := final.Region

	axes := []string{
		campaign.TargetPrefix + "wcet:APP.t1",
		campaign.TargetPrefix + "wcet:APP.t2",
	}
	grid := runGrid(t, pool, &campaign.Spec{
		Name:     "generic-edf-wcet12-grid",
		Strategy: campaign.StrategyGrid,
		Base:     base,
		Axes: []campaign.Axis{
			{Param: axes[0], Min: 1, Max: 16, Step: 1},
			{Param: axes[1], Min: 1, Max: 48, Step: 1},
		},
		Parallel: 4,
	})
	if len(grid.Points) != 768 {
		t.Fatalf("grid evaluated %d points, want 768", len(grid.Points))
	}
	decided := checkGridConsistency(t, r, axes, grid.Points)
	if decided == 0 {
		t.Fatal("no grid point fell in a decided box")
	}

	// The analytic EDF bound doubles as an oracle for both sides.
	for _, p := range grid.Points {
		c1, c2 := p.Point[axes[0]], p.Point[axes[1]]
		if want := 2*c1+c2 <= 16; p.Schedulable != want {
			t.Errorf("grid point (%g, %g) schedulable=%v contradicts utilization bound", c1, c2, p.Schedulable)
		}
	}

	if r.Coverage < 0.95 {
		t.Errorf("coverage = %g, want >= 0.95", r.Coverage)
	}
	if r.Counts.EngineRuns >= len(grid.Points) {
		t.Errorf("synth engine runs = %d, grid points = %d: no saving", r.Counts.EngineRuns, len(grid.Points))
	}
	t.Logf("synth: %d engine runs, coverage %.4f; grid: %d points",
		r.Counts.EngineRuns, r.Coverage, len(grid.Points))

	// The committed golden region for this space is exactly what this run
	// produced (modulo the ID, which hashes the space name and base).
	if want := int64(705); r.TotalCells != want {
		t.Errorf("total cells = %d, want %d", r.TotalCells, want)
	}
	boundary := 0
	for _, b := range r.Boxes {
		if b.Verdict == VerdictBoundary {
			boundary++
		}
	}
	if boundary != 20 {
		t.Errorf("boundary boxes = %d, want 20 (cells crossed by 2*C1+C2=16)", boundary)
	}
}

// TestTargetSpellingsAgree guards the property the whole comparison rests
// on: synth dims and campaign target axes apply the identical parameter
// mutation, so their configuration fingerprints collide and the cache
// tiers are shared between the two explorers.
func TestTargetSpellingsAgree(t *testing.T) {
	base := loadExample(t, "examples/imi/generic-edf.xml")
	space := &Space{
		Name: "fp-check",
		Base: base,
		Dims: []Dim{{Target: "wcet:APP.t1", Min: 1, Max: 16}},
	}
	if err := space.Validate(); err != nil {
		t.Fatal(err)
	}
	sys, err := space.Materialize([]int{6}) // value 7
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := config.ParseParamTarget(strings.TrimPrefix(campaign.TargetPrefix+"wcet:APP.t1", campaign.TargetPrefix))
	if err != nil {
		t.Fatal(err)
	}
	clone := base.Clone()
	if err := tgt.Apply(clone, 7); err != nil {
		t.Fatal(err)
	}
	if sys.Fingerprint() != clone.Fingerprint() {
		t.Fatal("synth dim and campaign target axis materialize different configurations")
	}
}

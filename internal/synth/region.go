package synth

// Synthesis state and its export forms. The State document is the
// checkpoint: written to the artifact store after every evaluated point,
// so a synthesis interrupted at any instant resumes from exactly the set
// of points it had evaluated — the refinement itself is re-derived
// deterministically with recorded points answering without the pool. The
// Region is the export schema of GET /v1/synth/{id}/region and `synth
// export`, pinned by a golden file; it deliberately carries no
// timestamps or durations, so the same space always exports byte-equal
// JSON.

// Synthesis statuses.
const (
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// Point sources: where a point's verdict came from.
const (
	SourceComputed   = "computed"   // a fresh engine run
	SourceMemory     = "memory"     // the pool's in-memory result cache
	SourceDisk       = "disk"       // the persistent store tier
	SourceCheckpoint = "checkpoint" // the synthesis's own resumed state
)

// Box verdicts.
const (
	VerdictFeasible   = "feasible"
	VerdictInfeasible = "infeasible"
	VerdictBoundary   = "boundary"
)

// stateVersion tags the checkpoint document schema.
const stateVersion = "synth/state/v1"

// stateKind is the store kind of synthesis checkpoints; it is pinned
// (exempt from GC) so checkpoint state survives any volume of outcomes.
const stateKind = "synth"

// PointRec is the recorded verdict at one evaluated lattice point.
type PointRec struct {
	// Idx is the lattice index vector; Values the parameter values it
	// maps to.
	Idx         []int     `json:"idx"`
	Values      []float64 `json:"values"`
	Fingerprint string    `json:"fingerprint"`
	Feasible    bool      `json:"feasible"`
	Source      string    `json:"source"`
	ElapsedNS   int64     `json:"elapsed_ns,omitempty"`
	// Trace is the W3C traceparent of the point's span when the pool runs
	// with tracing enabled; Postmortem names the flight-recorder dump a
	// dump-worthy failure left behind.
	Trace      string `json:"trace,omitempty"`
	Postmortem string `json:"postmortem,omitempty"`
}

// Straggler is one of the slowest computed points of the synthesis so
// far: its lattice coordinates, trace link and per-phase time breakdown.
type Straggler struct {
	Idx       []int            `json:"idx"`
	Values    []float64        `json:"values"`
	Trace     string           `json:"trace,omitempty"`
	ElapsedNS int64            `json:"elapsed_ns"`
	Phases    map[string]int64 `json:"phases,omitempty"`
}

// Counts accounts for synthesis work: where point verdicts came from and
// what the refinement did with them.
type Counts struct {
	// Evaluations counts distinct lattice points the refinement asked
	// for; EngineRuns the subset answered by a fresh engine interpretation
	// (the currency synth-vs-grid comparisons are made in). CacheMemory,
	// CacheDisk and Checkpoint count the tiers that answered the rest.
	Evaluations int `json:"evaluations"`
	EngineRuns  int `json:"engine_runs"`
	CacheMemory int `json:"cache_memory"`
	CacheDisk   int `json:"cache_disk"`
	Checkpoint  int `json:"checkpoint"`

	// Refinement counters: classified boxes by verdict, box splits, and
	// interior bisection iterations (1-D mode).
	BoxesFeasible    int `json:"boxes_feasible"`
	BoxesInfeasible  int `json:"boxes_infeasible"`
	BoxesBoundary    int `json:"boxes_boundary"`
	Splits           int `json:"splits"`
	BisectIterations int `json:"bisect_iterations"`
}

// State is the full synthesis record: the checkpoint document and the
// body of GET /v1/synth/{id}.
type State struct {
	Version string `json:"version"`
	ID      string `json:"id"`
	Name    string `json:"name"`
	Status  string `json:"status"`
	Space   *Space `json:"space"`

	// Points are the evaluated lattice points in completion order.
	Points []PointRec `json:"points,omitempty"`

	// Region is the synthesized cover, set when the refinement has run to
	// completion (Status done).
	Region *Region `json:"region,omitempty"`

	Error     string `json:"error,omitempty"`
	Counts    Counts `json:"counts"`
	StartedAt string `json:"started_at,omitempty"`
	UpdatedAt string `json:"updated_at,omitempty"`

	// Trace is the synthesis's root traceparent when the pool runs with
	// tracing enabled; every point span is a child of it. Persisted so a
	// resumed synthesis keeps extending the same trace.
	Trace string `json:"traceparent,omitempty"`
	// Stragglers are the slowest computed points so far (worst first),
	// maintained live for the ops view.
	Stragglers []Straggler `json:"stragglers,omitempty"`
}

// clone returns a snapshot safe to hand out concurrently with mutation.
func (s *State) clone() State {
	out := *s
	out.Points = append([]PointRec(nil), s.Points...)
	out.Stragglers = append([]Straggler(nil), s.Stragglers...)
	return out
}

// regionSchemaVersion tags the Region JSON schema, pinned by
// testdata/region.json.golden.
const regionSchemaVersion = "synth/region/v1"

// Box is one verdict-labelled sub-box of the cover, in parameter-value
// coordinates (inclusive bounds on the lattice vertices).
type Box struct {
	Min     []float64 `json:"min"`
	Max     []float64 `json:"max"`
	Verdict string    `json:"verdict"`
	// Cells is the box's cell volume, the unit coverage is measured in.
	Cells int64 `json:"cells"`
}

// Witness is a feasible/infeasible point pair straddling the boundary —
// the multi-dimensional generalization of the campaign bisect bracket.
// Each boundary box carries one.
type Witness struct {
	Feasible   []float64 `json:"feasible,omitempty"`
	Infeasible []float64 `json:"infeasible,omitempty"`
}

// Region is the synthesis result export: the box cover of the parameter
// space, its coverage fraction, and the boundary witnesses. The schema
// carries no timestamps, so a region is a pure function of its space —
// exports are byte-comparable across runs and machines.
type Region struct {
	SchemaVersion string `json:"schema_version"`
	ID            string `json:"id"`
	Name          string `json:"name"`
	Status        string `json:"status"`
	Error         string `json:"error,omitempty"`

	// Dims restates the explored dimensions (without the base system, so
	// exports stay small).
	Dims []Dim `json:"dims"`

	// Boxes is the cover in classification order: every cell of the
	// bounding box belongs to exactly one box.
	Boxes []Box `json:"boxes"`

	// TotalCells and DecidedCells measure the cover; Coverage is their
	// ratio (1 means every cell is classified, boundary cells count as
	// undecided).
	TotalCells   int64   `json:"total_cells"`
	DecidedCells int64   `json:"decided_cells"`
	Coverage     float64 `json:"coverage"`

	// Boundary carries one witness pair per boundary box, aligned with
	// the boundary boxes' order in Boxes.
	Boundary []Witness `json:"boundary,omitempty"`

	Counts Counts `json:"counts"`
}

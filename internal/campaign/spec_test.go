package campaign

import (
	"strings"
	"testing"

	"stopwatchsim/internal/config"
)

// specSystem builds a small valid base system for spec tests.
func specSystem() *config.System {
	s := &config.System{
		Name:      "spec",
		CoreTypes: []string{"cpu"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []config.Partition{{
			Name: "P1", Core: 0, Policy: config.FPPS,
			Tasks: []config.Task{
				{Name: "T", Priority: 1, WCET: []int64{10}, Period: 40, Deadline: 40},
			},
			Windows: []config.Window{{Start: 0, End: 40}},
		}},
	}
	return s
}

// fpSpec builds the reference spec the fingerprint tests mutate. A fresh
// value per call so mutations cannot leak between subtests.
func fpSpec() *Spec {
	return &Spec{
		Name:     "ref",
		Strategy: StrategyGrid,
		Base:     specSystem(),
		Generator: &Generator{
			Seed: 7, Tasks: 4, Util: 0.6, Periods: []int64{10, 20, 40},
		},
		Axes: []Axis{
			{Param: ParamWCETPct, Min: 100, Max: 300, Step: 100},
		},
		Parallel:  2,
		MaxPoints: 500,
	}
}

func TestSpecFingerprintDeterministic(t *testing.T) {
	a, b := fpSpec(), fpSpec()
	fa, fb := a.Fingerprint(), b.Fingerprint()
	if fa != fb {
		t.Fatalf("identical specs hash differently: %s vs %s", fa, fb)
	}
	if fa != a.Fingerprint() {
		t.Fatal("hashing the same spec twice differs")
	}
	if len(fa) != 64 || strings.Trim(fa, "0123456789abcdef") != "" {
		t.Fatalf("fingerprint is not hex sha256: %q", fa)
	}
}

// TestSpecFingerprintDistinct mutates every semantically significant field
// and asserts each mutation moves the fingerprint, while the excluded
// execution knob (Parallel) does not.
func TestSpecFingerprintDistinct(t *testing.T) {
	ref := fpSpec().Fingerprint()
	muts := []struct {
		name string
		mut  func(*Spec)
		same bool
	}{
		{name: "name", mut: func(s *Spec) { s.Name = "other" }},
		{name: "strategy", mut: func(s *Spec) { s.Strategy = StrategyBisect }},
		{name: "base/wcet", mut: func(s *Spec) { s.Base.Partitions[0].Tasks[0].WCET[0]++ }},
		{name: "base/nil", mut: func(s *Spec) { s.Base = nil }},
		{name: "generator/seed", mut: func(s *Spec) { s.Generator.Seed++ }},
		{name: "generator/tasks", mut: func(s *Spec) { s.Generator.Tasks++ }},
		{name: "generator/util", mut: func(s *Spec) { s.Generator.Util += 0.1 }},
		{name: "generator/periods", mut: func(s *Spec) { s.Generator.Periods[0] = 5 }},
		{name: "generator/nil", mut: func(s *Spec) { s.Generator = nil }},
		{name: "axis/param", mut: func(s *Spec) { s.Axes[0].Param = ParamQuantum }},
		{name: "axis/min", mut: func(s *Spec) { s.Axes[0].Min++ }},
		{name: "axis/max", mut: func(s *Spec) { s.Axes[0].Max++ }},
		{name: "axis/step", mut: func(s *Spec) { s.Axes[0].Step++ }},
		{name: "axis/tol", mut: func(s *Spec) { s.Axes[0].Tol = 0.5 }},
		{name: "axis/extra", mut: func(s *Spec) {
			s.Axes = append(s.Axes, Axis{Param: ParamQuantum, Min: 1, Max: 4, Step: 1})
		}},
		{name: "max_points", mut: func(s *Spec) { s.MaxPoints = 600 }},
		{name: "parallel", mut: func(s *Spec) { s.Parallel = 16 }, same: true},
	}
	for _, m := range muts {
		t.Run(m.name, func(t *testing.T) {
			s := fpSpec()
			m.mut(s)
			got := s.Fingerprint()
			if m.same && got != ref {
				t.Fatalf("execution knob %s moved the fingerprint", m.name)
			}
			if !m.same && got == ref {
				t.Fatalf("mutation %s did not move the fingerprint", m.name)
			}
		})
	}
}

// TestSpecFingerprintFieldConfusion guards the tagged encoding: shifting a
// value between adjacent float fields must not collide.
func TestSpecFingerprintFieldConfusion(t *testing.T) {
	a, b := fpSpec(), fpSpec()
	a.Axes[0].Min, a.Axes[0].Max = 100, 200
	b.Axes[0].Min, b.Axes[0].Max = 200, 100
	// b is invalid (max < min) but the fingerprint must still distinguish.
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("swapped min/max collide")
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"unknown field", `{"name":"x","strategy":"grid","bogus":1}`, "bogus"},
		{"no name", `{"strategy":"grid"}`, "needs a name"},
		{"no strategy", `{"name":"x"}`, "needs a strategy"},
		{"bad strategy", `{"name":"x","strategy":"anneal"}`, "unknown strategy"},
		{"bisect arity", `{"name":"x","strategy":"bisect","axes":[]}`, "exactly 1 axis"},
		{"grid no step", `{"name":"x","strategy":"grid","generator":{"seed":1,"periods":[10]},"axes":[{"param":"util","min":0.1,"max":0.9}]}`, "positive step"},
		{"axis needs base", `{"name":"x","strategy":"bisect","axes":[{"param":"wcet_pct","min":100,"max":200}]}`, "requires a base"},
		{"axis needs generator", `{"name":"x","strategy":"bisect","axes":[{"param":"util","min":0.1,"max":0.9}]}`, "requires a generator"},
		{"unknown param", `{"name":"x","strategy":"bisect","axes":[{"param":"jitter","min":1,"max":2}]}`, "unknown axis param"},
		{"max below min", `{"name":"x","strategy":"bisect","generator":{"seed":1,"periods":[10]},"axes":[{"param":"util","min":0.9,"max":0.1}]}`, "max 0.1 < min 0.9"},
		{"grid too big", `{"name":"x","strategy":"grid","generator":{"seed":1,"periods":[10]},"max_points":3,"axes":[{"param":"util","min":0.1,"max":0.9,"step":0.1}]}`, "exceeds max_points"},
		{"bad period", `{"name":"x","strategy":"bisect","generator":{"seed":1,"periods":[0]},"axes":[{"param":"util","min":0.1,"max":0.9}]}`, "not positive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseSpec(strings.NewReader(c.body))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want containing %q", err, c.want)
			}
		})
	}
}

func TestGridValues(t *testing.T) {
	a := Axis{Min: 100, Max: 300, Step: 100}
	got := a.gridValues()
	if len(got) != 3 || got[0] != 100 || got[1] != 200 || got[2] != 300 {
		t.Fatalf("gridValues = %v", got)
	}
	// Fractional steps must include the endpoint despite float drift.
	a = Axis{Min: 0.1, Max: 0.5, Step: 0.1}
	if got := a.gridValues(); len(got) != 5 {
		t.Fatalf("fractional gridValues = %v", got)
	}
}

func TestGridPointsCrossProduct(t *testing.T) {
	pts := gridPoints([]Axis{
		{Param: ParamWCETPct, Min: 100, Max: 200, Step: 100},
		{Param: ParamQuantum, Min: 1, Max: 3, Step: 1},
	})
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	// Row-major: last axis fastest.
	if pts[0].Key() != "quantum=1,wcet_pct=100" || pts[1].Key() != "quantum=2,wcet_pct=100" {
		t.Fatalf("order: %s then %s", pts[0].Key(), pts[1].Key())
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	s := &Spec{
		Name:     "gen",
		Strategy: StrategyBisect,
		Generator: &Generator{
			Seed: 42, Tasks: 4, Periods: []int64{10, 20, 40},
		},
		Axes: []Axis{{Param: ParamUtil, Min: 0.1, Max: 0.9}},
	}
	pt := Point{ParamUtil: 0.5}
	a, err := Materialize(s, pt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Materialize(s, pt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same point materialized to different configurations")
	}
	c, err := Materialize(s, Point{ParamUtil: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("different utilizations collide")
	}
}

func TestMaterializeQuantumAndScale(t *testing.T) {
	base := specSystem()
	base.Partitions[0].Policy = config.RR
	base.Partitions[0].Quantum = 2
	s := &Spec{Name: "rr", Strategy: StrategyGrid, Base: base,
		Axes: []Axis{{Param: ParamQuantum, Min: 1, Max: 4, Step: 1}}}
	sys, err := Materialize(s, Point{ParamQuantum: 3, ParamWCETPct: 150})
	if err != nil {
		t.Fatal(err)
	}
	if q := sys.Partitions[0].Quantum; q != 3 {
		t.Fatalf("quantum = %d, want 3", q)
	}
	if w := sys.Partitions[0].Tasks[0].WCET[0]; w != 15 {
		t.Fatalf("scaled WCET = %d, want 15", w)
	}
	// The spec's base must stay pristine.
	if base.Partitions[0].Quantum != 2 || base.Partitions[0].Tasks[0].WCET[0] != 10 {
		t.Fatal("base mutated by materialization")
	}
}

// TestTargetAxisValidation covers "target:" axes: a well-formed target
// over the base system validates; spelling errors, dangling references,
// a missing base, and sub-minimum bounds are each rejected with a
// message naming the axis.
func TestTargetAxisValidation(t *testing.T) {
	mk := func(param string, min float64) *Spec {
		return &Spec{Name: "t", Strategy: StrategyGrid, Base: specSystem(),
			Axes: []Axis{{Param: param, Min: min, Max: min + 10, Step: 1}}}
	}
	if err := mk("target:wcet:P1.T", 1).Validate(); err != nil {
		t.Fatalf("valid target axis rejected: %v", err)
	}
	if err := mk("target:offset:P1", 0).Validate(); err != nil {
		t.Fatalf("valid offset axis rejected: %v", err)
	}
	for _, tc := range []struct {
		spec *Spec
		want string
	}{
		{mk("target:bogus:P1.T", 1), "unknown parameter target kind"},
		{mk("target:wcet:P1.nope", 1), "no task named"},
		{mk("target:wcet:nope.T", 1), "no partition named"},
		{mk("target:wcet:P1.T", 0), ">= 1"},
		{&Spec{Name: "t", Strategy: StrategyGrid,
			Generator: &Generator{Periods: []int64{10}},
			Axes:      []Axis{{Param: "target:wcet:P1.T", Min: 1, Max: 4, Step: 1}}},
			"requires a base system"},
	} {
		err := tc.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("axis %q: err = %v, want mention of %q", tc.spec.Axes[0].Param, err, tc.want)
		}
	}
}

// TestMaterializeTargets materializes a point over two target axes and
// checks the named fields moved, everything else (and the base) did not,
// and repeated materialization fingerprints identically.
func TestMaterializeTargets(t *testing.T) {
	base := specSystem()
	s := &Spec{Name: "targets", Strategy: StrategyGrid, Base: base,
		Axes: []Axis{
			{Param: "target:wcet:P1.T", Min: 1, Max: 20, Step: 1},
			{Param: "target:period:P1.T", Min: 40, Max: 80, Step: 20},
		}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	pt := Point{"target:wcet:P1.T": 5, "target:period:P1.T": 80}
	sys, err := Materialize(s, pt)
	if err != nil {
		t.Fatal(err)
	}
	tk := &sys.Partitions[0].Tasks[0]
	if tk.WCET[0] != 5 || tk.Period != 80 {
		t.Fatalf("materialized task = WCET %d period %d, want 5 and 80", tk.WCET[0], tk.Period)
	}
	if tk.Deadline != 40 {
		t.Fatalf("deadline moved to %d, should stay 40", tk.Deadline)
	}
	if base.Partitions[0].Tasks[0].WCET[0] != 10 || base.Partitions[0].Tasks[0].Period != 40 {
		t.Fatal("base mutated by target materialization")
	}
	again, err := Materialize(s, pt)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Fingerprint() != again.Fingerprint() {
		t.Fatal("same target point materialized to different fingerprints")
	}
	// A structurally invalid point — period shrunk below the fixed
	// deadline — is caught by the post-apply Validate.
	if _, err := Materialize(s, Point{"target:period:P1.T": 20, "target:wcet:P1.T": 5}); err == nil {
		t.Fatal("period below the deadline materialized without error")
	}
}

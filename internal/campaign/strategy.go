package campaign

import (
	"context"
	"fmt"
	"math"
	"time"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/fault"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/obs"
)

// The strategies. Each maps the design space with a different budget of
// oracle runs:
//
//   - grid evaluates every cross-product point — the ground truth, at
//     exponential cost in axis count;
//   - bisect finds the breakdown value of one parameter in O(log range)
//     runs, generalizing analysis.CriticalScaling to any scalar axis;
//   - frontier traces the schedulable/unschedulable boundary over two
//     parameters by bisecting one axis per grid row of the other, seeding
//     each row's bracket from the neighbor row's critical point (the
//     boundary is continuous in practice, so the seeded probe usually
//     halves the bracket immediately).
//
// All three assume what the paper's model guarantees for WCET-like
// parameters: the verdict is deterministic per point; bisect and frontier
// additionally assume schedulability is monotone non-increasing along the
// bisected axis (true for WCET scale and utilization under
// work-conserving schedulers on a fixed window schedule).

// runGrid evaluates the full cross product, fanning spec.Parallel points
// at a time through the pool and checkpointing as each completes. Failed
// points are retried per the quarantine policy and then recorded and
// skipped — one pathological corner of a sweep must not void the rest of
// the map. On any abort (cancellation included) every in-flight batch job
// is canceled in the pool so workers stop promptly.
func (c *Campaign) runGrid(ctx context.Context, spec *Spec) error {
	pts := gridPoints(spec.Axes)
	par := spec.parallel()
	for lo := 0; lo < len(pts); lo += par {
		hi := min(lo+par, len(pts))
		type pending struct {
			pt  Point
			fp  string
			sys *config.System
			id  string
			// tc/start anchor the point's span when the pool traces.
			tc    obs.TraceContext
			start time.Time
			// done carries an attempt settled without a pool job (an
			// injected campaign-level fault).
			done *jobs.Job
		}
		var batch []pending
		// cancelBatch propagates an abort into the pool; canceling jobs
		// already terminal is a harmless no-op.
		cancelBatch := func() {
			for _, pn := range batch {
				if pn.id != "" {
					c.eng.pool.Cancel(pn.id)
				}
			}
		}
		for _, pt := range pts[lo:hi] {
			if err := ctx.Err(); err != nil {
				cancelBatch()
				return err
			}
			// Checkpoint hits are answered synchronously; everything else
			// is submitted up front and awaited below so the batch's
			// evaluations overlap in the pool.
			sys, err := Materialize(spec, pt)
			if err != nil {
				cancelBatch()
				return err
			}
			fp := sys.Fingerprint()
			if _, ok := c.checkpointHit(pt, fp); ok {
				continue
			}
			tc, start := c.pointTrace(), time.Now()
			if f := c.eng.pool.Faults().Hit(fault.SiteCampaignPoint); f != nil {
				batch = append(batch, pending{pt: pt, fp: fp, sys: sys, tc: tc, start: start,
					done: &jobs.Job{Status: jobs.StatusFailed, Err: f.Err()}})
				continue
			}
			jb, err := c.submit(ctx, sys, tc)
			if err != nil {
				cancelBatch()
				return err
			}
			batch = append(batch, pending{pt: pt, fp: fp, sys: sys, tc: tc, start: start, id: jb.ID})
		}
		for _, pn := range batch {
			var done jobs.Job
			if pn.done != nil {
				done = *pn.done
			} else {
				var err error
				done, err = c.eng.pool.Wait(ctx, pn.id)
				if err != nil {
					cancelBatch()
					return err
				}
			}
			_, err := c.settle(ctx, spec, pn.sys, pn.pt, pn.fp, done, pn.tc)
			c.closePointSpan(pn.tc, pn.pt, pn.start)
			if err != nil {
				cancelBatch()
				return err
			}
		}
	}
	return nil
}

// gridPoints expands the axes' cross product in row-major order (last
// axis fastest), matching the order a nested sweep loop would visit.
func gridPoints(axes []Axis) []Point {
	pts := []Point{{}}
	for i := range axes {
		a := &axes[i]
		var next []Point
		for _, base := range pts {
			for _, v := range a.gridValues() {
				pt := make(Point, len(base)+1)
				for k, bv := range base {
					pt[k] = bv
				}
				pt[a.Param] = v
				next = append(next, pt)
			}
		}
		pts = next
	}
	return pts
}

// runBisect finds the critical value of the single axis and records it —
// with the witness bracket behind it — in state.Critical/Bracket.
func (c *Campaign) runBisect(ctx context.Context, spec *Spec) error {
	crit, pair, _, err := c.bisectAxis(ctx, spec, Point{}, &spec.Axes[0], bracket{})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.state.Critical = crit
	c.state.Bracket = pair
	c.mu.Unlock()
	return nil
}

// runFrontier grids the row axis and bisects the column axis per row,
// seeding brackets adaptively, building state.Frontier.
func (c *Campaign) runFrontier(ctx context.Context, spec *Spec) error {
	rowAxis, colAxis := &spec.Axes[0], &spec.Axes[1]
	var prev *float64
	for _, row := range rowAxis.gridValues() {
		base := Point{rowAxis.Param: row}
		before := c.snapshot().Convergence.Evaluations

		var br bracket
		if prev != nil && *prev > colAxis.Min && *prev < colAxis.Max {
			// Adaptive seeding: probe the neighbor row's critical point
			// first; whichever way it lands, it halves the bracket.
			pr, err := c.evalAt(ctx, spec, base, colAxis.Param, *prev)
			if err != nil {
				return err
			}
			if pr.Schedulable {
				br.lo, br.loKnown = *prev, true
			} else {
				br.hi, br.hiKnown = *prev, true
			}
			c.mu.Lock()
			c.state.Convergence.BracketReuses++
			c.mu.Unlock()
			c.eng.count(func(m *EngineMetrics) { m.BracketReuses++ })
		}

		crit, pair, _, err := c.bisectAxis(ctx, spec, base, colAxis, br)
		if err != nil {
			return err
		}
		evals := c.snapshot().Convergence.Evaluations - before
		c.mu.Lock()
		c.state.Frontier = append(c.state.Frontier, FrontierRow{Row: row, Critical: crit, Bracket: pair, Evaluations: evals})
		c.state.Convergence.FrontierRows++
		c.mu.Unlock()
		c.eng.count(func(m *EngineMetrics) { m.FrontierRows++ })
		c.checkpoint()
		prev = crit
	}
	return nil
}

// bracket carries pre-verified bisection bounds: loKnown asserts lo is
// schedulable, hiKnown that hi is unschedulable.
type bracket struct {
	lo, hi           float64
	loKnown, hiKnown bool
}

// bisectAxis finds the largest schedulable value of axis a (at resolution
// a.tol()) over the base point, returning nil when even the minimum is
// unschedulable. The BracketPair carries the witness runs localizing the
// boundary: the largest value proven schedulable and the smallest proven
// unschedulable (one side absent when the whole interval falls on one
// side). The returned int counts interior iterations. A failed oracle run
// aborts the search: a breakdown result computed around a hole would be
// silently wrong.
func (c *Campaign) bisectAxis(ctx context.Context, spec *Spec, base Point, a *Axis, br bracket) (*float64, *BracketPair, int, error) {
	lo, hi := a.Min, a.Max
	loKnown, hiKnown := false, false
	if br.loKnown {
		lo, loKnown = br.lo, true
	}
	if br.hiKnown {
		hi, hiKnown = br.hi, true
	}

	if !loKnown {
		pr, err := c.evalAt(ctx, spec, base, a.Param, lo)
		if err != nil {
			return nil, nil, 0, err
		}
		if !pr.Schedulable {
			// Nothing schedulable at or above the minimum: the minimum
			// itself is the infeasible witness.
			v := lo
			return nil, &BracketPair{Infeasible: &v}, 0, nil
		}
	}
	if !hiKnown {
		pr, err := c.evalAt(ctx, spec, base, a.Param, hi)
		if err != nil {
			return nil, nil, 0, err
		}
		if pr.Schedulable {
			// The whole interval is schedulable: the maximum is its own
			// feasible witness, no infeasible one exists.
			v := hi
			return &v, &BracketPair{Feasible: &v}, 0, nil
		}
	}

	tol := a.tol()
	iters := 0
	for hi-lo > tol {
		// Snap the midpoint onto the tol grid anchored at the axis
		// minimum so bisect probes the same lattice a step-tol grid
		// would, then nudge it inside the open interval.
		mid := a.Min + math.Floor((lo+hi-2*a.Min)/2/tol)*tol
		if mid <= lo {
			mid = lo + tol
		}
		if mid >= hi {
			break
		}
		pr, err := c.evalAt(ctx, spec, base, a.Param, mid)
		if err != nil {
			return nil, nil, iters, err
		}
		iters++
		c.mu.Lock()
		c.state.Convergence.BisectIterations++
		c.mu.Unlock()
		c.eng.count(func(m *EngineMetrics) { m.BisectIterations++ })
		if pr.Schedulable {
			lo = mid
		} else {
			hi = mid
		}
	}
	// The loop invariant holds lo schedulable and hi unschedulable: the
	// converged bracket is the critical value's witness pair.
	v, u := lo, hi
	return &v, &BracketPair{Feasible: &v, Infeasible: &u}, iters, nil
}

// evalAt evaluates base extended with param=v, treating a failed run as a
// strategy-aborting error.
func (c *Campaign) evalAt(ctx context.Context, spec *Spec, base Point, param string, v float64) (*PointResult, error) {
	pt := make(Point, len(base)+1)
	for k, bv := range base {
		pt[k] = bv
	}
	pt[param] = v
	pr, err := c.evaluate(ctx, spec, pt)
	if err != nil {
		return nil, err
	}
	if pr.Source == SourceFailed {
		return nil, fmt.Errorf("campaign: point %s failed: %s", pt.Key(), pr.Error)
	}
	return pr, nil
}

package campaign

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"stopwatchsim/internal/analysis"
	"stopwatchsim/internal/config"
	"stopwatchsim/internal/gen"
)

// Point is one location in the design space: a value per axis parameter.
type Point map[string]float64

// Key renders the point canonically (params sorted) for logs and
// checkpoint labels.
func (p Point) Key() string {
	params := make([]string, 0, len(p))
	for k := range p {
		params = append(params, k)
	}
	sort.Strings(params)
	parts := make([]string, len(params))
	for i, k := range params {
		parts[i] = fmt.Sprintf("%s=%g", k, p[k])
	}
	return strings.Join(parts, ",")
}

// Materialize builds the concrete system configuration at a point. Points
// over synthetic axes (util, tasks) generate a UUniFast task set from the
// spec's Generator; points over base axes (wcet_pct, quantum) mutate a
// copy of the spec's base system. A synthetic point can additionally be
// scaled/mutated when both kinds of axes appear. Materialization is
// deterministic: the same spec and point always yield the same system,
// hence the same config.Fingerprint — the invariant resume and the
// persistent cache tier rest on.
func Materialize(s *Spec, pt Point) (*config.System, error) {
	util, haveUtil := pt[ParamUtil]
	tasks, haveTasks := pt[ParamTasks]

	var sys *config.System
	switch {
	case haveUtil || haveTasks:
		g := s.Generator
		if g == nil {
			return nil, fmt.Errorf("campaign: point %s needs a generator", pt.Key())
		}
		n := g.Tasks
		if haveTasks {
			n = int(math.Round(tasks))
		}
		u := g.Util
		if haveUtil {
			u = util
		}
		if n < 1 {
			return nil, fmt.Errorf("campaign: point %s has no tasks", pt.Key())
		}
		if u <= 0 {
			return nil, fmt.Errorf("campaign: point %s has non-positive utilization", pt.Key())
		}
		sys = gen.UtilizationConfig(g.Seed, n, u, g.Periods)
	case s.Base != nil:
		sys = s.Base
	default:
		return nil, fmt.Errorf("campaign: point %s matches neither base nor generator", pt.Key())
	}

	// ScaleWCET deep-copies the partition and task slices, so the returned
	// system is safe to mutate further and the spec's base stays pristine.
	pct := int64(100)
	if v, ok := pt[ParamWCETPct]; ok {
		pct = int64(math.Round(v))
		if pct < 1 {
			return nil, fmt.Errorf("campaign: point %s scales WCET to %d%%", pt.Key(), pct)
		}
	}
	sys = analysis.ScaleWCET(sys, pct)

	if v, ok := pt[ParamQuantum]; ok {
		q := int64(math.Round(v))
		if q < 1 {
			return nil, fmt.Errorf("campaign: point %s has non-positive quantum", pt.Key())
		}
		for i := range sys.Partitions {
			if sys.Partitions[i].Policy == config.RR {
				sys.Partitions[i].Quantum = q
			}
		}
	}

	// Target axes mutate named fields through config.ParamTarget, applied
	// in sorted param order so every permutation of the same point yields
	// the same system (hence the same fingerprint). ScaleWCET's copy is
	// shallow around windows, so targets work on a full clone.
	var targets []string
	for k := range pt {
		if strings.HasPrefix(k, TargetPrefix) {
			targets = append(targets, k)
		}
	}
	if len(targets) > 0 {
		sort.Strings(targets)
		sys = sys.Clone()
		for _, k := range targets {
			t, err := config.ParseParamTarget(strings.TrimPrefix(k, TargetPrefix))
			if err != nil {
				return nil, fmt.Errorf("campaign: point %s: %w", pt.Key(), err)
			}
			if err := t.Apply(sys, pt[k]); err != nil {
				return nil, fmt.Errorf("campaign: point %s: %w", pt.Key(), err)
			}
		}
	}

	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("campaign: point %s: %w", pt.Key(), err)
	}
	return sys, nil
}

package campaign

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestSummaryGolden pins the campaign summary export schema — the body of
// GET /v1/campaigns/{id}/result and of `campaign export`. A diff here
// means the export contract changed: bump summarySchemaVersion and
// regenerate with -update.
func TestSummaryGolden(t *testing.T) {
	crit := 409.0
	critHi := 410.0
	rowCrit := 380.0
	st := &State{
		Version:  stateVersion,
		ID:       "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
		Name:     "golden",
		Strategy: StrategyFrontier,
		Status:   StatusDone,
		Spec: &Spec{
			Name:     "golden",
			Strategy: StrategyFrontier,
			Generator: &Generator{
				Seed: 1, Tasks: 4, Util: 0.5, Periods: []int64{10, 20, 40},
			},
			Axes: []Axis{
				{Param: ParamTasks, Min: 2, Max: 3, Step: 1},
				{Param: ParamWCETPct, Min: 100, Max: 500, Tol: 1},
			},
		},
		Points: []PointResult{
			{
				Point:       Point{ParamTasks: 2, ParamWCETPct: 100},
				Fingerprint: "1111111111111111111111111111111111111111111111111111111111111111",
				Schedulable: true,
				Source:      SourceComputed,
				ElapsedNS:   1500000,
			},
			{
				Point:       Point{ParamTasks: 2, ParamWCETPct: 500},
				Fingerprint: "2222222222222222222222222222222222222222222222222222222222222222",
				Schedulable: false,
				Source:      SourceDisk,
				ElapsedNS:   2000,
			},
			{
				Point:       Point{ParamTasks: 3, ParamWCETPct: 300},
				Fingerprint: "3333333333333333333333333333333333333333333333333333333333333333",
				Schedulable: true,
				Source:      SourceCheckpoint,
			},
			{
				Point:       Point{ParamTasks: 3, ParamWCETPct: 500},
				Fingerprint: "4444444444444444444444444444444444444444444444444444444444444444",
				Source:      SourceFailed,
				Error:       "run failed",
			},
		},
		Frontier: []FrontierRow{
			{Row: 2, Critical: &crit, Bracket: &BracketPair{Feasible: &crit, Infeasible: &critHi}, Evaluations: 9},
			{Row: 3, Critical: &rowCrit, Evaluations: 5},
		},
		Convergence: Converge{
			Evaluations:      14,
			CheckpointHits:   1,
			BisectIterations: 10,
			FrontierRows:     2,
			BracketReuses:    1,
			Failed:           1,
		},
		StartedAt: "2026-01-02T03:04:05Z",
		UpdatedAt: "2026-01-02T03:05:06Z",
	}

	got, err := json.MarshalIndent(st.Summarize(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "summary.json.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("summary export drifted from golden file (run with -update after a deliberate schema change):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

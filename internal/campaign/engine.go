package campaign

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/fault"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/store"
)

// Engine errors.
var (
	// ErrUnknownCampaign is returned for IDs the registry does not hold.
	ErrUnknownCampaign = errors.New("campaign: unknown campaign")
)

// Engine orchestrates campaigns over a shared jobs.Pool, checkpointing
// state to an artifact store after every completed point. The store may be
// nil, in which case campaigns run memory-only (no resume across
// restarts). One Engine serves many concurrent campaigns; each runs in
// its own goroutine and fans its points through the pool.
type Engine struct {
	pool *jobs.Pool
	st   *store.Store
	lg   *slog.Logger

	mu      sync.Mutex
	camps   map[string]*Campaign
	metrics EngineMetrics
}

// EngineMetrics are the campaign-level telemetry counters, exposed by
// cmd/saserve as the saserve_campaign_* metric families.
type EngineMetrics struct {
	Started  int64 `json:"started"`
	Resumed  int64 `json:"resumed"`
	Done     int64 `json:"done"`
	Failed   int64 `json:"failed"`
	Canceled int64 `json:"canceled"`

	PointsComputed    int64 `json:"points_computed"`
	PointsCacheMemory int64 `json:"points_cache_memory"`
	PointsCacheDisk   int64 `json:"points_cache_disk"`
	PointsCheckpoint  int64 `json:"points_checkpoint"`
	PointsFailed      int64 `json:"points_failed"`

	BisectIterations int64 `json:"bisect_iterations"`
	FrontierRows     int64 `json:"frontier_rows"`
	BracketReuses    int64 `json:"bracket_reuses"`
}

// Campaign is one registered exploration.
type Campaign struct {
	eng *Engine

	mu        sync.Mutex
	state     *State
	completed map[string]*PointResult // fingerprint → recorded result
	recorded  map[string]bool         // Point.Key() → present in state.Points
	failedAt  map[string]int          // Point.Key() → index of a quarantined record

	// Ops view: the live event hub, the root trace context (zero when the
	// pool does not trace), the settled-point duration histogram feeding
	// the ETA, and the known point total (0 when open-ended). trace and
	// total are set before launch and read-only after.
	hub   obs.EventHub
	trace obs.TraceContext
	durs  *obs.Histogram
	total int

	cancel context.CancelFunc
	done   chan struct{}
}

// NewEngine creates an engine over the pool, checkpointing to st (nil
// disables persistence). The logger may be nil.
func NewEngine(pool *jobs.Pool, st *store.Store, lg *slog.Logger) *Engine {
	return &Engine{pool: pool, st: st, lg: lg, camps: make(map[string]*Campaign)}
}

// StoreKind returns the store kind campaign checkpoints are written
// under; stores backing an Engine should pin it.
func StoreKind() string { return stateKind }

// Start registers and launches the campaign described by spec, returning
// a snapshot of its state. Campaigns are content-addressed: starting a
// spec whose fingerprint matches a live campaign returns that campaign,
// and one matching a checkpoint in the store resumes or returns it
// (completed campaigns are served from their stored state without
// re-running anything).
func (e *Engine) Start(spec *Spec) (State, error) {
	if err := spec.Validate(); err != nil {
		return State{}, err
	}
	id := spec.Fingerprint()

	e.mu.Lock()
	defer e.mu.Unlock()
	if c := e.camps[id]; c != nil {
		return c.snapshot(), nil
	}
	st := e.loadState(id)
	resumed := st != nil
	if st == nil {
		st = &State{
			Version:  stateVersion,
			ID:       id,
			Name:     spec.Name,
			Strategy: spec.Strategy,
			Status:   StatusRunning,
			Spec:     spec,
		}
	}
	c := e.registerLocked(st)
	if st.Status == StatusRunning {
		if resumed {
			e.metrics.Resumed++
		} else {
			e.metrics.Started++
		}
		e.launchLocked(c)
	}
	return c.snapshot(), nil
}

// ResumeAll loads every campaign checkpoint from the store into the
// registry and relaunches the ones a crash interrupted (status still
// "running"). It returns the IDs of relaunched campaigns. Campaigns that
// had finished are registered inert so their state and summary remain
// queryable after a restart.
func (e *Engine) ResumeAll() []string {
	if e.st == nil {
		return nil
	}
	var resumed []string
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, id := range e.st.Keys(stateKind) {
		if e.camps[id] != nil {
			continue
		}
		st := e.loadState(id)
		if st == nil {
			continue
		}
		c := e.registerLocked(st)
		if st.Status == StatusRunning {
			e.metrics.Resumed++
			e.launchLocked(c)
			resumed = append(resumed, id)
		}
	}
	sort.Strings(resumed)
	return resumed
}

// RegisterAll loads every campaign checkpoint into the registry without
// relaunching any — the read-only counterpart of ResumeAll, for status and
// export tooling. Checkpoints still marked running register as inert too;
// Wait on them would block, so callers should only inspect state.
func (e *Engine) RegisterAll() {
	if e.st == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, id := range e.st.Keys(stateKind) {
		if e.camps[id] != nil {
			continue
		}
		if st := e.loadState(id); st != nil {
			c := e.registerLocked(st)
			if st.Status == StatusRunning {
				// Not launched: mark done so Wait callers cannot hang on a
				// campaign nobody is running.
				close(c.done)
			}
		}
	}
}

// loadState reads a checkpoint, nil when absent, unreadable, or a foreign
// schema version.
func (e *Engine) loadState(id string) *State {
	if e.st == nil {
		return nil
	}
	var st State
	ok, err := e.st.Get(stateKind, id, &st)
	if err != nil || !ok || st.Version != stateVersion || st.Spec == nil {
		return nil
	}
	return &st
}

// registerLocked adds a campaign for st to the registry. Terminal states
// get an already-closed done channel. Callers hold e.mu.
func (e *Engine) registerLocked(st *State) *Campaign {
	c := &Campaign{
		eng:       e,
		state:     st,
		completed: make(map[string]*PointResult, len(st.Points)),
		recorded:  make(map[string]bool, len(st.Points)),
		failedAt:  make(map[string]int),
		durs:      obs.NewHistogram(0, 1, nil),
		done:      make(chan struct{}),
	}
	if st.Spec.Strategy == StrategyGrid {
		c.total = st.Spec.gridSize()
	}
	for i := range st.Points {
		pr := &st.Points[i]
		if pr.Source != SourceFailed {
			c.completed[pr.Fingerprint] = pr
		} else {
			// Quarantined points are re-evaluated on resume; remember where
			// their stale record sits so a fresh result overwrites it in
			// place instead of appending a duplicate.
			c.failedAt[pr.Point.Key()] = i
		}
		c.recorded[pr.Point.Key()] = true
	}
	if st.Status != StatusRunning {
		close(c.done)
	}
	e.camps[st.ID] = c
	return c
}

// launchLocked starts the campaign goroutine. Callers hold e.mu.
func (e *Engine) launchLocked(c *Campaign) {
	c.armTraceLocked()
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	go c.run(ctx)
}

// Get returns a snapshot of the campaign's state.
func (e *Engine) Get(id string) (State, bool) {
	e.mu.Lock()
	c := e.camps[id]
	e.mu.Unlock()
	if c == nil {
		return State{}, false
	}
	return c.snapshot(), true
}

// List returns snapshots of all registered campaigns, ordered by ID.
func (e *Engine) List() []State {
	e.mu.Lock()
	cs := make([]*Campaign, 0, len(e.camps))
	for _, c := range e.camps {
		cs = append(cs, c)
	}
	e.mu.Unlock()
	out := make([]State, len(cs))
	for i, c := range cs {
		out[i] = c.snapshot()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Cancel requests cancellation of a running campaign. It returns false
// when the campaign is unknown or already terminal.
func (e *Engine) Cancel(id string) bool {
	e.mu.Lock()
	c := e.camps[id]
	e.mu.Unlock()
	if c == nil {
		return false
	}
	c.mu.Lock()
	running := c.state.Status == StatusRunning && c.cancel != nil
	c.mu.Unlock()
	if running {
		c.cancel()
	}
	return running
}

// Wait blocks until the campaign reaches a terminal state or ctx is done.
func (e *Engine) Wait(ctx context.Context, id string) (State, error) {
	e.mu.Lock()
	c := e.camps[id]
	e.mu.Unlock()
	if c == nil {
		return State{}, ErrUnknownCampaign
	}
	select {
	case <-c.done:
	case <-ctx.Done():
		return State{}, ctx.Err()
	}
	return c.snapshot(), nil
}

// Metrics returns a snapshot of the campaign-level counters.
func (e *Engine) Metrics() EngineMetrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.metrics
}

func (e *Engine) count(f func(*EngineMetrics)) {
	e.mu.Lock()
	f(&e.metrics)
	e.mu.Unlock()
}

func (c *Campaign) snapshot() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state.clone()
}

// checkpoint persists the current state (after stamping UpdatedAt) so a
// crash at any later instant resumes from here. Persistence failures are
// logged, not fatal: the campaign still completes in memory.
func (c *Campaign) checkpoint() {
	c.mu.Lock()
	c.state.UpdatedAt = time.Now().UTC().Format(time.RFC3339Nano)
	snap := c.state.clone()
	c.mu.Unlock()
	if c.eng.st == nil {
		return
	}
	// Checkpoints ride through transient store faults on the same retry
	// policy as the pool's disk tier; an exhausted failure is still only
	// logged — the campaign completes in memory and the previous
	// checkpoint stays authoritative for resume.
	retries, err := fault.DefaultStoreRetry.Do(context.Background(), nil, func() error {
		return c.eng.st.Put(stateKind, snap.ID, &snap)
	})
	c.eng.pool.Resilience().StoreRetries.Add(int64(retries))
	if err != nil && c.eng.lg != nil {
		c.eng.lg.Warn("campaign checkpoint failed", "campaign", snap.ID, "error", err.Error())
	}
}

// run executes the campaign's strategy to a terminal state.
func (c *Campaign) run(ctx context.Context) {
	defer close(c.done)
	t0 := time.Now()
	c.mu.Lock()
	if c.state.StartedAt == "" {
		c.state.StartedAt = time.Now().UTC().Format(time.RFC3339Nano)
	}
	spec := c.state.Spec
	c.mu.Unlock()
	c.checkpoint()
	lg := c.logger()
	if lg != nil {
		lg.Info("campaign running", "strategy", spec.Strategy, "points_done", len(c.snapshot().Points))
	}

	var err error
	switch spec.Strategy {
	case StrategyGrid:
		err = c.runGrid(ctx, spec)
	case StrategyBisect:
		err = c.runBisect(ctx, spec)
	case StrategyFrontier:
		err = c.runFrontier(ctx, spec)
	default:
		err = fmt.Errorf("campaign: unknown strategy %q", spec.Strategy)
	}

	status := StatusDone
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		status = StatusCanceled
	default:
		status = StatusFailed
	}
	c.mu.Lock()
	c.state.Status = status
	if err != nil && status == StatusFailed {
		c.state.Error = err.Error()
	}
	c.mu.Unlock()
	c.checkpoint()
	if tr := c.eng.pool.Tracer(); tr != nil && c.trace.Valid() {
		// The exploration's root span: parentless, covering this process's
		// share of the campaign (a resumed campaign records one per leg).
		tr.Record(c.trace, [8]byte{}, "campaign", spec.Strategy, t0.UnixNano(), time.Since(t0).Nanoseconds())
	}
	c.publishStatus(status)
	c.eng.count(func(m *EngineMetrics) {
		switch status {
		case StatusDone:
			m.Done++
		case StatusFailed:
			m.Failed++
		case StatusCanceled:
			m.Canceled++
		}
	})
	if lg != nil {
		if err != nil {
			lg.Warn("campaign finished", "status", status, "error", err.Error())
		} else {
			lg.Info("campaign finished", "status", status, "points", len(c.snapshot().Points))
		}
	}
}

func (c *Campaign) logger() *slog.Logger {
	if c.eng.lg == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eng.lg.With(slog.String("campaign", c.state.ID), slog.String("name", c.state.Name))
}

// evaluate answers one point: from the resumed checkpoint when its
// fingerprint is already recorded, otherwise through the pool (which
// consults its memory and disk tiers before interpreting). A returned
// *PointResult with Source == SourceFailed carries a failed run; the
// error return is reserved for campaign-level aborts (cancellation,
// materialization bugs, pool shutdown).
func (c *Campaign) evaluate(ctx context.Context, spec *Spec, pt Point) (*PointResult, error) {
	sys, err := Materialize(spec, pt)
	if err != nil {
		return nil, err
	}
	fp := sys.Fingerprint()
	if pr, ok := c.checkpointHit(pt, fp); ok {
		return pr, nil
	}
	// Every point gets a child span of the exploration's root trace (when
	// the pool traces); the job it submits links its submit/queue/run/
	// engine-phase spans under it.
	tc := c.pointTrace()
	start := time.Now()
	done, err := c.attempt(ctx, sys, tc)
	if err != nil {
		return nil, err
	}
	pr, err := c.settle(ctx, spec, sys, pt, fp, done, tc)
	c.closePointSpan(tc, pt, start)
	return pr, err
}

// attempt runs one evaluation attempt through the pool, with the
// campaign-level fault site applied first (an injected fault is a failed
// attempt that never consumed a pool slot). When the wait dies — the
// campaign was canceled or the engine is shutting down — the cancellation
// is propagated into the pool so the in-flight job stops promptly instead
// of running to completion for nobody.
func (c *Campaign) attempt(ctx context.Context, sys *config.System, tc obs.TraceContext) (jobs.Job, error) {
	if f := c.eng.pool.Faults().Hit(fault.SiteCampaignPoint); f != nil {
		return jobs.Job{Status: jobs.StatusFailed, Err: f.Err()}, nil
	}
	jb, err := c.submit(ctx, sys, tc)
	if err != nil {
		return jobs.Job{}, err
	}
	done, err := c.eng.pool.Wait(ctx, jb.ID)
	if err != nil {
		c.eng.pool.Cancel(jb.ID)
		return jobs.Job{}, err
	}
	return done, nil
}

// settle resolves one point from its first attempt's terminal job,
// retrying failed attempts (with doubling backoff) up to the spec's
// quarantine budget before recording the final result. A point that
// exhausts its retries is quarantined: recorded failed, counted, and the
// campaign moves on.
func (c *Campaign) settle(ctx context.Context, spec *Spec, sys *config.System, pt Point, fp string, done jobs.Job, tc obs.TraceContext) (*PointResult, error) {
	for attempt := 0; done.Status == jobs.StatusFailed && attempt < spec.retries(); attempt++ {
		c.mu.Lock()
		c.state.Convergence.Retries++
		c.mu.Unlock()
		c.eng.pool.Resilience().PointRetries.Add(1)
		if lg := c.logger(); lg != nil {
			msg := "run failed"
			if done.Err != nil {
				msg = done.Err.Error()
			}
			lg.Warn("point attempt failed; retrying", "point", pt.Key(), "attempt", attempt+1, "error", msg)
		}
		if err := fault.SleepContext(ctx, spec.retryBackoff()<<attempt); err != nil {
			return nil, err
		}
		var err error
		done, err = c.attempt(ctx, sys, tc)
		if err != nil {
			return nil, err
		}
	}
	pr, err := c.record(pt, fp, done, tc)
	if err != nil {
		return nil, err
	}
	if pr.Source == SourceFailed {
		c.eng.pool.Resilience().PointsQuarantined.Add(1)
		c.eng.pool.ServiceFlight().RecordWall(obs.FlightQuarantine, 0, 0, pt.Key())
		if lg := c.logger(); lg != nil {
			lg.Warn("point quarantined", "point", pt.Key(), "error", pr.Error)
		}
	}
	c.publishPoint(pr)
	return pr, nil
}

// checkpointHit answers a point whose fingerprint is already recorded —
// from the resumed checkpoint, or from an earlier point of this run that
// materialized to the same configuration (e.g. WCET percentages that
// truncate to the same scaled values) — skipping the pool entirely. A hit
// at coordinates not yet in the state is recorded as a SourceCheckpoint
// point, so grid summaries cover every grid point even when several alias
// one configuration.
func (c *Campaign) checkpointHit(pt Point, fp string) (*PointResult, bool) {
	c.mu.Lock()
	pr := c.completed[fp]
	var fresh bool
	if pr != nil {
		c.state.Convergence.CheckpointHits++
		prCopy := *pr
		prCopy.Point = pt
		if key := pt.Key(); !c.recorded[key] {
			fresh = true
			prCopy.Source = SourceCheckpoint
			prCopy.ElapsedNS = 0
			c.state.Points = append(c.state.Points, prCopy)
			c.recorded[key] = true
		}
		pr = &prCopy
	}
	c.mu.Unlock()
	if pr == nil {
		return nil, false
	}
	c.eng.count(func(m *EngineMetrics) { m.PointsCheckpoint++ })
	if fresh {
		c.checkpoint()
		c.publishPoint(pr)
	}
	return pr, true
}

// record translates a finished job into the point's result, appends it to
// the state, checkpoints, and bumps the counters. Cancellation surfaces
// as context.Canceled so strategies unwind uniformly.
func (c *Campaign) record(pt Point, fp string, done jobs.Job, tc obs.TraceContext) (*PointResult, error) {
	pr := &PointResult{Point: pt, Fingerprint: fp}
	if tc.Valid() {
		pr.Trace = tc.Traceparent()
	}
	pr.Postmortem = done.PostmortemKey
	switch {
	case done.Status == jobs.StatusDone:
		pr.Schedulable = done.Outcome.Verdict == jobs.VerdictSchedulable
		pr.ElapsedNS = int64(done.Outcome.Elapsed)
		switch {
		case done.DiskHit:
			pr.Source = SourceDisk
		case done.CacheHit:
			pr.Source = SourceMemory
		default:
			pr.Source = SourceComputed
		}
	case done.Status == jobs.StatusCanceled:
		return nil, context.Canceled
	default:
		pr.Source = SourceFailed
		if done.Err != nil {
			pr.Error = done.Err.Error()
		} else {
			pr.Error = "run failed"
		}
	}

	if pr.Source != SourceFailed {
		c.durs.Observe(time.Duration(pr.ElapsedNS))
	}
	c.mu.Lock()
	c.state.Convergence.Evaluations++
	c.noteStragglerLocked(pr, done)
	key := pt.Key()
	if idx, stale := c.failedAt[key]; stale {
		// A re-evaluation of a quarantined point (resume, or a checkpointed
		// retry): overwrite the stale failed record in place so the state
		// never holds two records for one point. A successful result heals
		// the point; another failure just refreshes the error.
		c.state.Points[idx] = *pr
		if pr.Source != SourceFailed {
			delete(c.failedAt, key)
			c.state.Convergence.Failed--
			c.completed[fp] = &c.state.Points[idx]
		}
	} else {
		c.state.Points = append(c.state.Points, *pr)
		c.recorded[key] = true
		if pr.Source == SourceFailed {
			c.state.Convergence.Failed++
			c.failedAt[key] = len(c.state.Points) - 1
		} else {
			c.completed[fp] = &c.state.Points[len(c.state.Points)-1]
		}
	}
	c.mu.Unlock()
	c.eng.count(func(m *EngineMetrics) {
		switch pr.Source {
		case SourceComputed:
			m.PointsComputed++
		case SourceMemory:
			m.PointsCacheMemory++
		case SourceDisk:
			m.PointsCacheDisk++
		case SourceFailed:
			m.PointsFailed++
		}
	})
	c.checkpoint()
	return pr, nil
}

// submit enqueues the run, backing off briefly when the pool signals
// backpressure (campaigns yield to interactive submissions rather than
// failing).
func (c *Campaign) submit(ctx context.Context, sys *config.System, tc obs.TraceContext) (jobs.Job, error) {
	for {
		jb, err := c.eng.pool.SubmitTraced(jobs.ConfigRun{Sys: sys}, c.eng.pool.DefaultBudget(), tc)
		switch {
		case err == nil:
			return jb, nil
		case errors.Is(err, jobs.ErrQueueFull):
			select {
			case <-ctx.Done():
				return jobs.Job{}, ctx.Err()
			case <-time.After(10 * time.Millisecond):
			}
		default:
			return jobs.Job{}, err
		}
	}
}

package campaign

// Campaign state and its export forms. The State document is the
// campaign's checkpoint: it is written to the artifact store after every
// completed point, so a campaign interrupted by a crash resumes from
// exactly the set of points it had finished. The Summary is the export
// schema of GET /v1/campaigns/{id}/result and `campaign export`, pinned
// by a golden file like the trace export contracts.

// Campaign statuses.
const (
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// Point sources: where a point's verdict came from.
const (
	SourceComputed   = "computed"   // a fresh engine run
	SourceMemory     = "memory"     // the pool's in-memory result cache
	SourceDisk       = "disk"       // the persistent store tier
	SourceCheckpoint = "checkpoint" // the campaign's own resumed state
	SourceFailed     = "failed"     // the run failed (Error holds why)
)

// stateVersion tags the checkpoint document schema.
const stateVersion = "campaign/state/v1"

// stateKind is the store kind of campaign checkpoints; it is pinned
// (exempt from GC) so checkpoint state survives any volume of outcomes.
const stateKind = "campaign"

// PointResult is the recorded verdict at one evaluated point.
type PointResult struct {
	Point       Point  `json:"point"`
	Fingerprint string `json:"fingerprint"`
	Schedulable bool   `json:"schedulable"`
	Source      string `json:"source"`
	Error       string `json:"error,omitempty"`
	ElapsedNS   int64  `json:"elapsed_ns"`
	// Trace is the W3C traceparent of the point's span when the pool runs
	// with tracing enabled, linking the point to its span tree under
	// GET /v1/traces/{id}. Postmortem names the flight-recorder dump a
	// dump-worthy failure left behind (GET /v1/jobs/{key}/postmortem).
	Trace      string `json:"trace,omitempty"`
	Postmortem string `json:"postmortem,omitempty"`
}

// Straggler is one of the slowest computed points of the exploration so
// far: its coordinates, trace link and per-phase time breakdown — the
// ops-view answer to "where did the campaign's wall time go".
type Straggler struct {
	Point     Point            `json:"point"`
	Trace     string           `json:"trace,omitempty"`
	ElapsedNS int64            `json:"elapsed_ns"`
	Phases    map[string]int64 `json:"phases,omitempty"`
}

// BracketPair is the bisection's final bracket: the largest value proven
// schedulable and the smallest proven unschedulable. It localizes the
// breakdown boundary to one tol-wide interval — the pair of witness runs
// behind a Critical value. Either side may be absent: an interval that is
// entirely unschedulable has no feasible witness, an entirely schedulable
// one no infeasible witness.
type BracketPair struct {
	Feasible   *float64 `json:"feasible,omitempty"`
	Infeasible *float64 `json:"infeasible,omitempty"`
}

// FrontierRow is one row of the schedulability frontier: the critical
// (largest schedulable) value of the bisected axis at one row-axis value,
// nil when nothing at or above the axis minimum is schedulable.
type FrontierRow struct {
	Row         float64      `json:"row"`
	Critical    *float64     `json:"critical,omitempty"`
	Bracket     *BracketPair `json:"bracket,omitempty"`
	Evaluations int          `json:"evaluations"`
}

// Converge counts strategy work: how many oracle runs the exploration
// needed and how much the adaptive machinery saved.
type Converge struct {
	// Evaluations counts points submitted to the pool (including cache
	// hits of either tier); CheckpointHits counts points answered from the
	// campaign's own resumed state without touching the pool.
	Evaluations    int `json:"evaluations"`
	CheckpointHits int `json:"checkpoint_hits"`
	// BisectIterations counts interior bisection steps (excluding bound
	// probes); FrontierRows counts completed frontier rows; BracketReuses
	// counts rows whose bracket was seeded from the previous row's
	// critical point.
	BisectIterations int `json:"bisect_iterations"`
	FrontierRows     int `json:"frontier_rows"`
	BracketReuses    int `json:"bracket_reuses"`
	// Failed counts points currently recorded failed (quarantined); a
	// point healed by a later re-evaluation no longer counts. Retries
	// counts failed attempts that were retried before their point settled.
	Failed  int `json:"failed_points"`
	Retries int `json:"retries,omitempty"`
}

// State is the full campaign record: the checkpoint document and the body
// of GET /v1/campaigns/{id}.
type State struct {
	Version  string `json:"version"`
	ID       string `json:"id"`
	Name     string `json:"name"`
	Strategy string `json:"strategy"`
	Status   string `json:"status"`
	Spec     *Spec  `json:"spec"`

	// Points are the evaluated points in completion order.
	Points []PointResult `json:"points,omitempty"`

	// Critical is the bisect strategy's result: the largest schedulable
	// value of the axis, nil when even the minimum is unschedulable.
	// Bracket carries the witness pair behind it.
	Critical *float64     `json:"critical,omitempty"`
	Bracket  *BracketPair `json:"bracket,omitempty"`
	// Frontier is the frontier strategy's result table, one row per
	// row-axis grid value.
	Frontier []FrontierRow `json:"frontier,omitempty"`

	Error       string   `json:"error,omitempty"`
	Convergence Converge `json:"convergence"`
	StartedAt   string   `json:"started_at,omitempty"`
	UpdatedAt   string   `json:"updated_at,omitempty"`

	// Trace is the exploration's root traceparent when the pool runs with
	// tracing enabled; every point span is a child of it. Persisted so a
	// resumed campaign keeps extending the same trace.
	Trace string `json:"traceparent,omitempty"`
	// Stragglers are the slowest computed points so far (worst first),
	// maintained live for the ops view.
	Stragglers []Straggler `json:"stragglers,omitempty"`
}

// clone returns a snapshot safe to hand out concurrently with mutation.
func (s *State) clone() State {
	out := *s
	out.Points = append([]PointResult(nil), s.Points...)
	out.Frontier = append([]FrontierRow(nil), s.Frontier...)
	out.Stragglers = append([]Straggler(nil), s.Stragglers...)
	return out
}

// summarySchemaVersion tags the Summary JSON schema, pinned by
// testdata/summary.json.golden.
const summarySchemaVersion = "campaign/summary/v1"

// PointCounts breaks the evaluated points down by verdict and by where
// each verdict came from.
type PointCounts struct {
	Total         int `json:"total"`
	Schedulable   int `json:"schedulable"`
	Unschedulable int `json:"unschedulable"`
	Computed      int `json:"computed"`
	CacheMemory   int `json:"cache_memory"`
	CacheDisk     int `json:"cache_disk"`
	Checkpoint    int `json:"checkpoint"`
	Failed        int `json:"failed"`
}

// Summary is the campaign result export: identity, point accounting, the
// strategy's conclusion (critical point or frontier table) and the
// convergence counters.
type Summary struct {
	SchemaVersion string `json:"schema_version"`
	ID            string `json:"id"`
	Name          string `json:"name"`
	Strategy      string `json:"strategy"`
	Status        string `json:"status"`
	Error         string `json:"error,omitempty"`

	Points      PointCounts   `json:"points"`
	Critical    *float64      `json:"critical,omitempty"`
	Bracket     *BracketPair  `json:"bracket,omitempty"`
	Frontier    []FrontierRow `json:"frontier,omitempty"`
	Convergence Converge      `json:"convergence"`
}

// Summarize builds the export summary of a state snapshot.
func (s *State) Summarize() *Summary {
	sum := &Summary{
		SchemaVersion: summarySchemaVersion,
		ID:            s.ID,
		Name:          s.Name,
		Strategy:      s.Strategy,
		Status:        s.Status,
		Error:         s.Error,
		Critical:      s.Critical,
		Bracket:       s.Bracket,
		Frontier:      s.Frontier,
		Convergence:   s.Convergence,
	}
	for i := range s.Points {
		p := &s.Points[i]
		sum.Points.Total++
		switch p.Source {
		case SourceComputed:
			sum.Points.Computed++
		case SourceMemory:
			sum.Points.CacheMemory++
		case SourceDisk:
			sum.Points.CacheDisk++
		case SourceCheckpoint:
			sum.Points.Checkpoint++
		case SourceFailed:
			sum.Points.Failed++
			continue
		}
		if p.Schedulable {
			sum.Points.Schedulable++
		} else {
			sum.Points.Unschedulable++
		}
	}
	return sum
}

package campaign

import (
	"context"
	"testing"
	"time"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/store"
)

// bdSystem is the breakdown reference: one task C=10, T=D=40 on a full
// window. analysis.CriticalScaling pins its critical WCET scale at 409%
// (409% of 10 truncates to 40 = the deadline; 410% yields 41).
func bdSystem() *config.System {
	return &config.System{
		Name:      "bd",
		CoreTypes: []string{"cpu"},
		Cores:     []config.Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []config.Partition{{
			Name: "P1", Core: 0, Policy: config.FPPS,
			Tasks: []config.Task{
				{Name: "T", Priority: 1, WCET: []int64{10}, Period: 40, Deadline: 40},
			},
			Windows: []config.Window{{Start: 0, End: 40}},
		}},
	}
}

// runCampaign starts spec on a fresh engine and waits for the terminal
// state.
func runCampaign(t *testing.T, eng *Engine, spec *Spec) State {
	t.Helper()
	st, err := eng.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(t.Context(), 2*time.Minute)
	defer cancel()
	final, err := eng.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return final
}

func TestGridCampaign(t *testing.T) {
	pool := jobs.New(jobs.Options{Workers: 2})
	defer pool.Close()
	eng := NewEngine(pool, nil, nil)

	spec := &Spec{
		Name:     "grid",
		Strategy: StrategyGrid,
		Base:     bdSystem(),
		Axes:     []Axis{{Param: ParamWCETPct, Min: 100, Max: 500, Step: 100}},
		Parallel: 2,
	}
	final := runCampaign(t, eng, spec)
	if final.Status != StatusDone {
		t.Fatalf("status = %s (%s)", final.Status, final.Error)
	}
	if len(final.Points) != 5 {
		t.Fatalf("evaluated %d points, want 5", len(final.Points))
	}
	// Schedulable through 400%, not at 500%.
	want := map[float64]bool{100: true, 200: true, 300: true, 400: true, 500: false}
	for _, p := range final.Points {
		v := p.Point[ParamWCETPct]
		if p.Schedulable != want[v] {
			t.Errorf("wcet_pct=%g schedulable=%v, want %v", v, p.Schedulable, want[v])
		}
		if p.Fingerprint == "" || p.Source == SourceFailed {
			t.Errorf("point %s: fingerprint=%q source=%s", p.Point.Key(), p.Fingerprint, p.Source)
		}
	}
	if final.Convergence.Evaluations != 5 {
		t.Errorf("evaluations = %d, want 5", final.Convergence.Evaluations)
	}

	// Re-starting the identical spec returns the completed campaign
	// without re-running anything (content-addressed identity).
	again, err := eng.Start(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != final.ID || again.Status != StatusDone {
		t.Fatalf("restart: id=%s status=%s", again.ID, again.Status)
	}
	if m := eng.Metrics(); m.Started != 1 {
		t.Errorf("started = %d, want 1", m.Started)
	}
}

// TestBisectMatchesGrid is the acceptance criterion: breakdown bisection
// converges to the same critical point an exhaustive sweep finds.
func TestBisectMatchesGrid(t *testing.T) {
	pool := jobs.New(jobs.Options{Workers: 2})
	defer pool.Close()
	eng := NewEngine(pool, nil, nil)

	bis := runCampaign(t, eng, &Spec{
		Name:     "bisect",
		Strategy: StrategyBisect,
		Base:     bdSystem(),
		Axes:     []Axis{{Param: ParamWCETPct, Min: 100, Max: 500, Tol: 1}},
	})
	if bis.Status != StatusDone {
		t.Fatalf("bisect status = %s (%s)", bis.Status, bis.Error)
	}
	if bis.Critical == nil {
		t.Fatal("bisect found no critical point")
	}

	// Exhaustive scan at the same resolution over the bracketing window.
	grid := runCampaign(t, eng, &Spec{
		Name:     "scan",
		Strategy: StrategyGrid,
		Base:     bdSystem(),
		Axes:     []Axis{{Param: ParamWCETPct, Min: 400, Max: 420, Step: 1}},
	})
	if grid.Status != StatusDone {
		t.Fatalf("grid status = %s (%s)", grid.Status, grid.Error)
	}
	sweepCritical := 0.0
	for _, p := range grid.Points {
		if p.Schedulable && p.Point[ParamWCETPct] > sweepCritical {
			sweepCritical = p.Point[ParamWCETPct]
		}
	}
	if sweepCritical != 409 {
		t.Fatalf("exhaustive sweep critical = %g, want 409", sweepCritical)
	}
	if *bis.Critical != sweepCritical {
		t.Fatalf("bisect critical %g != sweep critical %g", *bis.Critical, sweepCritical)
	}
	// The witness bracket localizes the breakdown to one tol-wide step:
	// critical itself schedulable, critical+tol unschedulable.
	if b := bis.Bracket; b == nil || b.Feasible == nil || b.Infeasible == nil ||
		*b.Feasible != 409 || *b.Infeasible != 410 {
		t.Fatalf("bisect bracket = %+v, want [409 schedulable, 410 unschedulable]", bis.Bracket)
	}
	// Bisection must be cheaper than scanning the full range.
	if bis.Convergence.Evaluations >= 40 {
		t.Errorf("bisect used %d evaluations", bis.Convergence.Evaluations)
	}
}

func TestBisectDegenerateEnds(t *testing.T) {
	pool := jobs.New(jobs.Options{Workers: 1})
	defer pool.Close()
	eng := NewEngine(pool, nil, nil)

	// Everything schedulable: critical is the axis maximum.
	hi := runCampaign(t, eng, &Spec{
		Name: "all-ok", Strategy: StrategyBisect, Base: bdSystem(),
		Axes: []Axis{{Param: ParamWCETPct, Min: 50, Max: 300, Tol: 1}},
	})
	if hi.Status != StatusDone || hi.Critical == nil || *hi.Critical != 300 {
		t.Fatalf("all-schedulable: status=%s critical=%v", hi.Status, hi.Critical)
	}
	if b := hi.Bracket; b == nil || b.Feasible == nil || *b.Feasible != 300 || b.Infeasible != nil {
		t.Fatalf("all-schedulable bracket = %+v, want feasible 300 only", hi.Bracket)
	}
	// Nothing schedulable: critical is nil.
	lo := runCampaign(t, eng, &Spec{
		Name: "none-ok", Strategy: StrategyBisect, Base: bdSystem(),
		Axes: []Axis{{Param: ParamWCETPct, Min: 500, Max: 900, Tol: 1}},
	})
	if lo.Status != StatusDone || lo.Critical != nil {
		t.Fatalf("none-schedulable: status=%s critical=%v", lo.Status, lo.Critical)
	}
	if b := lo.Bracket; b == nil || b.Infeasible == nil || *b.Infeasible != 500 || b.Feasible != nil {
		t.Fatalf("none-schedulable bracket = %+v, want infeasible 500 only", lo.Bracket)
	}
}

func TestFrontierCampaign(t *testing.T) {
	base := bdSystem()
	base.Partitions[0].Policy = config.RR
	base.Partitions[0].Quantum = 1

	pool := jobs.New(jobs.Options{Workers: 2})
	defer pool.Close()
	eng := NewEngine(pool, nil, nil)

	final := runCampaign(t, eng, &Spec{
		Name:     "frontier",
		Strategy: StrategyFrontier,
		Base:     base,
		Axes: []Axis{
			{Param: ParamQuantum, Min: 1, Max: 3, Step: 1},
			{Param: ParamWCETPct, Min: 100, Max: 500, Tol: 1},
		},
	})
	if final.Status != StatusDone {
		t.Fatalf("status = %s (%s)", final.Status, final.Error)
	}
	if len(final.Frontier) != 3 {
		t.Fatalf("frontier rows = %d, want 3", len(final.Frontier))
	}
	// A single task ignores the RR quantum, so every row's critical point
	// is the FPPS breakdown value, and rows after the first must reuse the
	// previous row's bracket.
	for _, r := range final.Frontier {
		if r.Critical == nil || *r.Critical != 409 {
			t.Errorf("row %g: critical = %v, want 409", r.Row, r.Critical)
		}
	}
	if final.Convergence.BracketReuses != 2 {
		t.Errorf("bracket reuses = %d, want 2", final.Convergence.BracketReuses)
	}
	if final.Convergence.FrontierRows != 3 {
		t.Errorf("frontier rows counter = %d, want 3", final.Convergence.FrontierRows)
	}
}

// TestResumeSkipsCompleted is the crash-resume contract: a campaign whose
// checkpoint lost its last points (simulated crash between checkpoints)
// resumes on a fresh engine and pool, answers the retained points from the
// checkpoint without touching the pool, and completes only the remainder.
func TestResumeSkipsCompleted(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{PinnedKinds: []string{StoreKind()}})
	if err != nil {
		t.Fatal(err)
	}

	spec := &Spec{
		Name:     "resume",
		Strategy: StrategyGrid,
		Base:     bdSystem(),
		Axes:     []Axis{{Param: ParamWCETPct, Min: 100, Max: 500, Step: 50}},
		Parallel: 1,
	}

	pool1 := jobs.New(jobs.Options{Workers: 1, Store: st})
	eng1 := NewEngine(pool1, st, nil)
	final := runCampaign(t, eng1, spec)
	if final.Status != StatusDone {
		t.Fatalf("first run status = %s (%s)", final.Status, final.Error)
	}
	total := len(final.Points)
	if total != 9 {
		t.Fatalf("first run evaluated %d points, want 9", total)
	}
	pool1.Close()

	// Rewind the checkpoint: drop the last 3 points and mark the campaign
	// running again, as if the process died before they were recorded.
	rewound := final.clone()
	rewound.Points = rewound.Points[:total-3]
	rewound.Status = StatusRunning
	if err := st.Put(StoreKind(), rewound.ID, &rewound); err != nil {
		t.Fatal(err)
	}
	// Drop the pool-tier outcomes for those 3 points too, so resume must
	// actually recompute them (not just disk-hit).
	for _, p := range final.Points[total-3:] {
		if err := st.Delete("outcome", p.Fingerprint); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// "Restart": reopen the store, fresh pool and engine, ResumeAll.
	st2, err := store.Open(dir, store.Options{PinnedKinds: []string{StoreKind()}})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	pool2 := jobs.New(jobs.Options{Workers: 1, Store: st2})
	defer pool2.Close()
	eng2 := NewEngine(pool2, st2, nil)

	resumed := eng2.ResumeAll()
	if len(resumed) != 1 || resumed[0] != final.ID {
		t.Fatalf("resumed = %v, want [%s]", resumed, final.ID)
	}
	ctx, cancel := context.WithTimeout(t.Context(), 2*time.Minute)
	defer cancel()
	done, err := eng2.Wait(ctx, final.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone {
		t.Fatalf("resumed status = %s (%s)", done.Status, done.Error)
	}
	if len(done.Points) != total {
		t.Fatalf("resumed campaign has %d points, want %d", len(done.Points), total)
	}
	// The retained points answer from the checkpoint; exactly the dropped
	// 3 go through the pool and are recomputed.
	if got := done.Convergence.CheckpointHits; got != total-3 {
		t.Errorf("checkpoint hits = %d, want %d", got, total-3)
	}
	m := eng2.Metrics()
	if m.PointsCheckpoint != int64(total-3) {
		t.Errorf("points_checkpoint = %d, want %d", m.PointsCheckpoint, total-3)
	}
	if m.PointsComputed != 3 {
		t.Errorf("points_computed = %d, want 3", m.PointsComputed)
	}
	if pm := pool2.Metrics(); pm.Done != 3 {
		t.Errorf("pool finished %d jobs, want 3", pm.Done)
	}
	if m.Resumed != 1 {
		t.Errorf("resumed counter = %d, want 1", m.Resumed)
	}
}

// TestResumeDiskTier covers the other crash window: points the pool
// persisted but whose campaign checkpoint was lost entirely resume via the
// disk tier without re-running the engine.
func TestResumeDiskTier(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{PinnedKinds: []string{StoreKind()}})
	if err != nil {
		t.Fatal(err)
	}

	spec := &Spec{
		Name:     "disk-resume",
		Strategy: StrategyGrid,
		Base:     bdSystem(),
		Axes:     []Axis{{Param: ParamWCETPct, Min: 100, Max: 300, Step: 100}},
		Parallel: 1,
	}
	pool1 := jobs.New(jobs.Options{Workers: 1, Store: st})
	eng1 := NewEngine(pool1, st, nil)
	final := runCampaign(t, eng1, spec)
	if final.Status != StatusDone {
		t.Fatalf("first run status = %s", final.Status)
	}
	pool1.Close()
	// Lose the campaign checkpoint but keep the pool outcomes.
	if err := st.Delete(StoreKind(), final.ID); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := store.Open(dir, store.Options{PinnedKinds: []string{StoreKind()}})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	pool2 := jobs.New(jobs.Options{Workers: 1, Store: st2})
	defer pool2.Close()
	eng2 := NewEngine(pool2, st2, nil)
	redo := runCampaign(t, eng2, spec)
	if redo.Status != StatusDone {
		t.Fatalf("redo status = %s (%s)", redo.Status, redo.Error)
	}
	for _, p := range redo.Points {
		if p.Source != SourceDisk {
			t.Errorf("point %s source = %s, want %s", p.Point.Key(), p.Source, SourceDisk)
		}
	}
	if m := eng2.Metrics(); m.PointsCacheDisk != 3 || m.PointsComputed != 0 {
		t.Errorf("disk=%d computed=%d, want 3/0", m.PointsCacheDisk, m.PointsComputed)
	}
}

func TestCancelCampaign(t *testing.T) {
	pool := jobs.New(jobs.Options{Workers: 1})
	defer pool.Close()
	eng := NewEngine(pool, nil, nil)

	// A wide, fine grid gives cancellation a window to land in.
	st, err := eng.Start(&Spec{
		Name:      "cancel",
		Strategy:  StrategyGrid,
		Base:      bdSystem(),
		Axes:      []Axis{{Param: ParamWCETPct, Min: 100, Max: 2000, Step: 1}},
		Parallel:  1,
		MaxPoints: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Cancel(st.ID) {
		// The campaign may already have finished on a fast machine; accept
		// either terminal outcome below.
		t.Log("cancel raced completion")
	}
	ctx, cancel := context.WithTimeout(t.Context(), 2*time.Minute)
	defer cancel()
	final, err := eng.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCanceled && final.Status != StatusDone {
		t.Fatalf("status = %s (%s)", final.Status, final.Error)
	}
	if eng.Cancel(st.ID) {
		t.Error("canceling a terminal campaign reported success")
	}
}

func TestUnknownCampaign(t *testing.T) {
	pool := jobs.New(jobs.Options{Workers: 1})
	defer pool.Close()
	eng := NewEngine(pool, nil, nil)
	if _, ok := eng.Get("nope"); ok {
		t.Error("Get on unknown id succeeded")
	}
	if eng.Cancel("nope") {
		t.Error("Cancel on unknown id succeeded")
	}
	if _, err := eng.Wait(context.Background(), "nope"); err != ErrUnknownCampaign {
		t.Errorf("Wait err = %v", err)
	}
}

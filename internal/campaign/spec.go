// Package campaign turns single-configuration schedulability runs into
// persistent, resumable design-space explorations. The paper's result —
// one deterministic NSA interpretation decides one configuration — makes a
// configuration space a pure function landscape, and a campaign is a
// strategy for mapping it: an exhaustive grid, a breakdown binary search
// for the critical value of one parameter (the generalization of
// analysis.CriticalScaling to any scalar axis), or an adaptive frontier
// bisection tracing the schedulable/unschedulable boundary across two
// parameters, as in parametric schedulability analyses of avionics
// systems (PAPERS.md: André et al., Han et al.).
//
// Campaign identity is content-addressed: Spec.Fingerprint hashes the
// semantically significant fields (mirroring config.Fingerprint), so the
// same exploration resubmitted — or resumed after a crash from the
// artifact store — is the same campaign, and every evaluated point is
// keyed by its configuration fingerprint and shared with the service's
// two-tier result cache.
package campaign

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"math"
	"strings"
	"time"

	"stopwatchsim/internal/config"
)

// Strategy names.
const (
	// StrategyGrid evaluates the full cross product of the axes' grids.
	StrategyGrid = "grid"
	// StrategyBisect binary-searches one axis for the largest schedulable
	// value (breakdown analysis), assuming schedulability is monotone
	// non-increasing in the axis value.
	StrategyBisect = "bisect"
	// StrategyFrontier grids the first axis and bisects the second per
	// row, seeding each row's bracket from the previous row's critical
	// point, producing the schedulability frontier table.
	StrategyFrontier = "frontier"
)

// Parameter names an axis can vary.
const (
	// ParamWCETPct scales every WCET of the base system to v percent
	// (analysis.ScaleWCET). Requires Base.
	ParamWCETPct = "wcet_pct"
	// ParamUtil synthesizes a UUniFast task set with total utilization v
	// (internal/gen). Requires Generator.
	ParamUtil = "util"
	// ParamTasks synthesizes a UUniFast task set with round(v) tasks.
	// Requires Generator.
	ParamTasks = "tasks"
	// ParamQuantum sets the round-robin quantum of every RR partition of
	// the base system to round(v) ticks. Requires Base.
	ParamQuantum = "quantum"
)

// TargetPrefix marks an axis that varies one named configuration field
// through config.ParamTarget: "target:" followed by a target spelling,
// e.g. "target:wcet:P1.edf_t1" or "target:offset:P2". Target axes require
// Base and share their materialization with synthesis spaces
// (internal/synth), so a campaign grid and a synthesized region over the
// same targets classify the same concrete configurations.
const TargetPrefix = "target:"

// Axis is one explored parameter dimension.
type Axis struct {
	// Param names the varied parameter (Param* constants).
	Param string `json:"param"`
	// Min and Max bound the explored interval, inclusive.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Step is the grid spacing for grid axes (grid strategy, and the row
	// axis of frontier). Required > 0 there, ignored for bisected axes.
	Step float64 `json:"step,omitempty"`
	// Tol is the resolution a bisected axis converges to (bisect strategy,
	// and the column axis of frontier); <= 0 means 1.
	Tol float64 `json:"tol,omitempty"`
}

// Generator parameterizes UUniFast task-set synthesis for axes that
// explore synthetic workloads (util, tasks).
type Generator struct {
	// Seed feeds the deterministic RNG; the same spec always explores the
	// same configurations.
	Seed int64 `json:"seed"`
	// Tasks is the task count when no "tasks" axis varies it.
	Tasks int `json:"tasks,omitempty"`
	// Util is the total utilization when no "util" axis varies it.
	Util float64 `json:"util,omitempty"`
	// Periods is the period set tasks draw from.
	Periods []int64 `json:"periods"`
}

// Spec is a campaign specification, the JSON body of POST /v1/campaigns
// and the input of `campaign run`.
type Spec struct {
	// Name labels the campaign for humans; it participates in the
	// fingerprint (two same-shaped explorations under different names are
	// different campaigns).
	Name string `json:"name"`
	// Strategy selects the exploration strategy (Strategy* constants).
	Strategy string `json:"strategy"`
	// Base is the system configuration that parameter axes mutate.
	// Required by wcet_pct and quantum axes.
	Base *config.System `json:"base,omitempty"`
	// Generator parameterizes synthetic task sets. Required by util and
	// tasks axes.
	Generator *Generator `json:"generator,omitempty"`
	// Axes are the explored dimensions: grid takes 1–3 grid axes, bisect
	// exactly 1 bisected axis, frontier a grid row axis then a bisected
	// column axis.
	Axes []Axis `json:"axes"`
	// Parallel bounds in-flight evaluations for fan-out strategies; <= 0
	// means 4. Execution detail: not part of the fingerprint.
	Parallel int `json:"parallel,omitempty"`
	// MaxPoints bounds the total number of evaluated points as a safety
	// rail; <= 0 means 10000.
	MaxPoints int `json:"max_points,omitempty"`
	// Retries bounds re-evaluation attempts of a failed point before it is
	// quarantined — recorded failed and (for grid) skipped; 0 means 2,
	// negative disables retries. RetryBackoffMS is the backoff before the
	// first retry, doubling per attempt; <= 0 means 50ms. Execution
	// details: not part of the fingerprint.
	Retries        int `json:"retries,omitempty"`
	RetryBackoffMS int `json:"retry_backoff_ms,omitempty"`
}

const defaultMaxPoints = 10000

// ParseSpec decodes and validates a campaign spec from JSON.
func ParseSpec(r io.Reader) (*Spec, error) {
	return ParseSpecBase(r, nil)
}

// ParseSpecBase decodes a spec and, when the spec itself carries no base
// system, injects the one base() loads (e.g. from an XML configuration
// file) before validating. base may be nil or return (nil, nil) to inject
// nothing.
func ParseSpecBase(r io.Reader, base func() (*config.System, error)) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	s := &Spec{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("campaign: decoding spec: %w", err)
	}
	if s.Base == nil && base != nil {
		sys, err := base()
		if err != nil {
			return nil, fmt.Errorf("campaign: loading base system: %w", err)
		}
		s.Base = sys
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Validate checks the spec's internal consistency: strategy arity, axis
// bounds, parameter requirements, and the grid size against MaxPoints.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("campaign: spec needs a name")
	}
	switch s.Strategy {
	case StrategyGrid:
		if len(s.Axes) < 1 || len(s.Axes) > 3 {
			return fmt.Errorf("campaign: grid takes 1–3 axes, got %d", len(s.Axes))
		}
		for i := range s.Axes {
			if err := s.checkAxis(&s.Axes[i], true); err != nil {
				return err
			}
		}
		if n := s.gridSize(); n > s.maxPoints() {
			return fmt.Errorf("campaign: grid of %d points exceeds max_points %d", n, s.maxPoints())
		}
	case StrategyBisect:
		if len(s.Axes) != 1 {
			return fmt.Errorf("campaign: bisect takes exactly 1 axis, got %d", len(s.Axes))
		}
		if err := s.checkAxis(&s.Axes[0], false); err != nil {
			return err
		}
	case StrategyFrontier:
		if len(s.Axes) != 2 {
			return fmt.Errorf("campaign: frontier takes a row axis and a bisected axis, got %d", len(s.Axes))
		}
		if err := s.checkAxis(&s.Axes[0], true); err != nil {
			return err
		}
		if err := s.checkAxis(&s.Axes[1], false); err != nil {
			return err
		}
	case "":
		return fmt.Errorf("campaign: spec needs a strategy (grid, bisect, frontier)")
	default:
		return fmt.Errorf("campaign: unknown strategy %q", s.Strategy)
	}
	if s.Base != nil {
		if err := s.Base.Validate(); err != nil {
			return fmt.Errorf("campaign: base system: %w", err)
		}
	}
	if s.Generator != nil {
		if len(s.Generator.Periods) == 0 {
			return fmt.Errorf("campaign: generator needs a non-empty period set")
		}
		for _, p := range s.Generator.Periods {
			if p < 1 {
				return fmt.Errorf("campaign: generator period %d is not positive", p)
			}
		}
	}
	return nil
}

// checkAxis validates one axis; grid selects grid-axis rules (Step) over
// bisected-axis rules (Tol).
func (s *Spec) checkAxis(a *Axis, grid bool) error {
	if spell, ok := strings.CutPrefix(a.Param, TargetPrefix); ok {
		t, err := config.ParseParamTarget(spell)
		if err != nil {
			return fmt.Errorf("campaign: axis %q: %w", a.Param, err)
		}
		if s.Base == nil {
			return fmt.Errorf("campaign: axis %q requires a base system", a.Param)
		}
		if err := t.Check(s.Base); err != nil {
			return fmt.Errorf("campaign: axis %q: %w", a.Param, err)
		}
		if a.Min < t.MinValue() {
			return fmt.Errorf("campaign: axis %q minimum %g must be >= %g", a.Param, a.Min, t.MinValue())
		}
		return s.checkAxisBounds(a, grid)
	}
	switch a.Param {
	case ParamWCETPct, ParamQuantum:
		if s.Base == nil {
			return fmt.Errorf("campaign: axis %q requires a base system", a.Param)
		}
		if a.Min < 1 {
			return fmt.Errorf("campaign: axis %q minimum %g must be >= 1", a.Param, a.Min)
		}
	case ParamUtil, ParamTasks:
		if s.Generator == nil {
			return fmt.Errorf("campaign: axis %q requires a generator", a.Param)
		}
		if a.Min <= 0 {
			return fmt.Errorf("campaign: axis %q minimum %g must be positive", a.Param, a.Min)
		}
	case "":
		return fmt.Errorf("campaign: axis needs a param")
	default:
		return fmt.Errorf("campaign: unknown axis param %q", a.Param)
	}
	return s.checkAxisBounds(a, grid)
}

// checkAxisBounds validates the interval and spacing rules shared by every
// axis kind.
func (s *Spec) checkAxisBounds(a *Axis, grid bool) error {
	if a.Max < a.Min {
		return fmt.Errorf("campaign: axis %q has max %g < min %g", a.Param, a.Max, a.Min)
	}
	if grid && a.Step <= 0 {
		return fmt.Errorf("campaign: grid axis %q needs a positive step", a.Param)
	}
	if !grid && a.Tol < 0 {
		return fmt.Errorf("campaign: bisected axis %q has negative tol", a.Param)
	}
	return nil
}

// gridValues expands a grid axis into its point values: Min, Min+Step, …
// capped at Max.
func (a *Axis) gridValues() []float64 {
	var vs []float64
	for v := a.Min; v <= a.Max+1e-9; v += a.Step {
		vs = append(vs, v)
	}
	return vs
}

// tol returns the bisection resolution, defaulting to 1.
func (a *Axis) tol() float64 {
	if a.Tol <= 0 {
		return 1
	}
	return a.Tol
}

// gridSize returns the number of points of a full grid over the axes.
func (s *Spec) gridSize() int {
	n := 1
	for i := range s.Axes {
		n *= len(s.Axes[i].gridValues())
	}
	return n
}

func (s *Spec) maxPoints() int {
	if s.MaxPoints <= 0 {
		return defaultMaxPoints
	}
	return s.MaxPoints
}

func (s *Spec) parallel() int {
	if s.Parallel <= 0 {
		return 4
	}
	return s.Parallel
}

// retries resolves the quarantine retry budget per failed point.
func (s *Spec) retries() int {
	switch {
	case s.Retries < 0:
		return 0
	case s.Retries == 0:
		return 2
	default:
		return s.Retries
	}
}

// retryBackoff resolves the base backoff before the first retry.
func (s *Spec) retryBackoff() time.Duration {
	if s.RetryBackoffMS <= 0 {
		return 50 * time.Millisecond
	}
	return time.Duration(s.RetryBackoffMS) * time.Millisecond
}

// fpVersion tags the canonical encoding of Spec.Fingerprint; bump it when
// the encoding (or the meaning of any encoded field) changes so stale
// campaign state cannot alias new campaigns.
const fpVersion = "stopwatchsim/campaign/v1"

// Fingerprint returns the stable content address of the campaign: the hex
// SHA-256 of a canonical encoding of every field that affects which
// configurations are explored and how the strategy interprets the
// results. Execution knobs (Parallel) are excluded, so rerunning the same
// exploration with different concurrency resumes the same campaign. The
// base system contributes through config.Fingerprint, keeping the two
// content-address schemes composable.
func (s *Spec) Fingerprint() string {
	h := sha256.New()
	e := fpEncoder{h: h}
	e.str(fpVersion)
	e.str(s.Name)
	e.str(s.Strategy)
	if s.Base == nil {
		e.str("")
	} else {
		e.str(s.Base.Fingerprint())
	}
	if s.Generator == nil {
		e.list(-1)
	} else {
		g := s.Generator
		e.num(g.Seed)
		e.num(int64(g.Tasks))
		e.f64(g.Util)
		e.list(len(g.Periods))
		for _, p := range g.Periods {
			e.num(p)
		}
	}
	e.list(len(s.Axes))
	for i := range s.Axes {
		a := &s.Axes[i]
		e.str(a.Param)
		e.f64(a.Min)
		e.f64(a.Max)
		e.f64(a.Step)
		e.f64(a.Tol)
	}
	e.num(int64(s.maxPoints()))
	return hex.EncodeToString(h.Sum(nil))
}

// fpEncoder writes the same unambiguous tagged byte stream as the config
// fingerprint encoder, extended with a float tag (IEEE-754 bits).
type fpEncoder struct {
	h   hash.Hash
	buf [9]byte
}

func (e *fpEncoder) num(v int64) {
	e.buf[0] = 'i'
	binary.BigEndian.PutUint64(e.buf[1:], uint64(v))
	e.h.Write(e.buf[:])
}

func (e *fpEncoder) f64(v float64) {
	e.buf[0] = 'f'
	binary.BigEndian.PutUint64(e.buf[1:], math.Float64bits(v))
	e.h.Write(e.buf[:])
}

func (e *fpEncoder) list(n int) {
	e.buf[0] = 'l'
	binary.BigEndian.PutUint64(e.buf[1:], uint64(int64(n)))
	e.h.Write(e.buf[:])
}

func (e *fpEncoder) str(s string) {
	e.buf[0] = 's'
	binary.BigEndian.PutUint64(e.buf[1:], uint64(len(s)))
	e.h.Write(e.buf[:])
	e.h.Write([]byte(s))
}

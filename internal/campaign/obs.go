package campaign

// The campaign ops view: a live event stream (the body of the
// GET /v1/campaigns/{id}/events SSE endpoint), coverage/ETA accounting
// from the points-duration histogram, and the straggler report embedded
// in campaign status. All of it is best-effort telemetry — publishing
// never blocks point evaluation, and a slow subscriber loses events
// rather than stalling the exploration.

import (
	"sort"
	"time"

	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/obs"
)

// Event is one record on a campaign's live event stream.
type Event struct {
	// Type is "point" (a point settled), "quarantine" (a point exhausted
	// its retries) or "status" (the campaign reached a terminal state).
	Type     string `json:"type"`
	Campaign string `json:"campaign"`
	Status   string `json:"status,omitempty"`

	// Point fields, set on point/quarantine events.
	Point       string `json:"point,omitempty"`
	Source      string `json:"source,omitempty"`
	Schedulable bool   `json:"schedulable,omitempty"`
	Trace       string `json:"traceparent,omitempty"`

	// Progress: points recorded so far, the known total (grid strategies;
	// 0 when the strategy's point count is open-ended), coverage percent
	// and the remaining-work estimate from the points histogram.
	Done        int     `json:"done"`
	Total       int     `json:"total,omitempty"`
	CoveragePct float64 `json:"coverage_pct,omitempty"`
	EtaMS       int64   `json:"eta_ms,omitempty"`
}

// Subscribe attaches a live event subscriber to a campaign, returning
// its channel and a cancel function. The channel is closed by cancel,
// not by campaign completion — subscribers see the terminal "status"
// event and decide for themselves when to detach.
func (e *Engine) Subscribe(id string) (<-chan any, func(), bool) {
	e.mu.Lock()
	c := e.camps[id]
	e.mu.Unlock()
	if c == nil {
		return nil, nil, false
	}
	ch, cancel := c.hub.Subscribe(16)
	return ch, cancel, true
}

// StatusEvent builds a synthetic status event from the campaign's
// current state — the opening record of every SSE subscription, so a
// subscriber to an already-terminal campaign still sees its status.
func (e *Engine) StatusEvent(id string) (Event, bool) {
	e.mu.Lock()
	c := e.camps[id]
	e.mu.Unlock()
	if c == nil {
		return Event{}, false
	}
	c.mu.Lock()
	ev := Event{Type: "status", Status: c.state.Status}
	c.progressLocked(&ev)
	c.mu.Unlock()
	return ev, true
}

// progressLocked fills the progress fields of ev. Callers hold c.mu.
func (c *Campaign) progressLocked(ev *Event) {
	ev.Campaign = c.state.ID
	ev.Done = len(c.state.Points)
	if c.total <= 0 {
		return
	}
	ev.Total = c.total
	ev.CoveragePct = 100 * float64(ev.Done) / float64(c.total)
	if ev.Done >= c.total {
		return
	}
	if s := c.durs.Snapshot(); s.Count > 0 {
		mean := float64(s.Sum) / float64(s.Count)
		par := c.state.Spec.parallel()
		ev.EtaMS = int64(mean * float64(c.total-ev.Done) / float64(par) / float64(time.Millisecond))
	}
}

// publishPoint pushes a settled point onto the stream.
func (c *Campaign) publishPoint(pr *PointResult) {
	if c.hub.Subscribers() == 0 {
		return
	}
	ev := Event{
		Type:        "point",
		Point:       pr.Point.Key(),
		Source:      pr.Source,
		Schedulable: pr.Schedulable,
		Trace:       pr.Trace,
	}
	if pr.Source == SourceFailed {
		ev.Type = "quarantine"
	}
	c.mu.Lock()
	c.progressLocked(&ev)
	c.mu.Unlock()
	c.hub.Publish(ev)
}

// publishStatus pushes the campaign's terminal state onto the stream.
func (c *Campaign) publishStatus(status string) {
	if c.hub.Subscribers() == 0 {
		return
	}
	ev := Event{Type: "status", Status: status}
	c.mu.Lock()
	c.progressLocked(&ev)
	c.mu.Unlock()
	c.hub.Publish(ev)
}

// maxStragglers bounds the straggler report.
const maxStragglers = 5

// noteStragglerLocked folds one computed point into the top-N straggler
// report, keeping it sorted worst-first. Callers hold c.mu.
func (c *Campaign) noteStragglerLocked(pr *PointResult, done jobs.Job) {
	if pr.Source != SourceComputed {
		return
	}
	s := Straggler{Point: pr.Point, Trace: pr.Trace, ElapsedNS: pr.ElapsedNS}
	if done.Outcome != nil && done.Outcome.Telemetry != nil {
		s.Phases = make(map[string]int64)
		for _, ph := range done.Outcome.Telemetry.Phases {
			if ph.Depth == 0 {
				s.Phases[ph.Name] += ph.DurNS
			}
		}
	}
	st := c.state.Stragglers
	// A healed re-evaluation must replace the point's old entry, never
	// duplicate it.
	key := s.Point.Key()
	for j := range st {
		if st[j].Point.Key() == key {
			st = append(st[:j], st[j+1:]...)
			break
		}
	}
	i := sort.Search(len(st), func(i int) bool { return st[i].ElapsedNS < s.ElapsedNS })
	if i >= maxStragglers {
		c.state.Stragglers = st
		return
	}
	st = append(st, Straggler{})
	copy(st[i+1:], st[i:])
	st[i] = s
	if len(st) > maxStragglers {
		st = st[:maxStragglers]
	}
	c.state.Stragglers = st
}

// pointTrace mints one point's child trace context, zero when the
// exploration is untraced.
func (c *Campaign) pointTrace() obs.TraceContext {
	if c.trace.Valid() {
		return c.trace.Child()
	}
	return obs.TraceContext{}
}

// closePointSpan records the point's span — submit through settle —
// under the exploration's root. No-op for untraced points.
func (c *Campaign) closePointSpan(tc obs.TraceContext, pt Point, start time.Time) {
	if tr := c.eng.pool.Tracer(); tr != nil && tc.Valid() {
		tr.Record(tc, c.trace.SpanID, "campaign.point", pt.Key(),
			start.UnixNano(), time.Since(start).Nanoseconds())
	}
}

// armTraceLocked mints (or, on resume, re-adopts) the exploration's root
// trace context when the pool traces. Callers hold e.mu; the campaign
// goroutine is not yet running.
func (c *Campaign) armTraceLocked() {
	if c.eng.pool.Tracer() == nil {
		return
	}
	if tc, ok := obs.ParseTraceparent(c.state.Trace); ok {
		c.trace = tc
		return
	}
	c.trace = obs.NewTrace()
	c.state.Trace = c.trace.Traceparent()
}

package campaign

import (
	"context"
	"testing"
	"time"

	"stopwatchsim/internal/fault"
	"stopwatchsim/internal/jobs"
	"stopwatchsim/internal/store"
)

// faultyPool builds a pool whose injector runs the given rules
// deterministically (seed fixed, sequence-point triggered).
func faultyPool(workers int, st *store.Store, rules ...fault.Rule) *jobs.Pool {
	return jobs.New(jobs.Options{
		Workers: workers,
		Store:   st,
		Faults:  fault.New(fault.Plan{Seed: 1, Rules: rules}),
	})
}

// TestQuarantineRetryHeals: a point whose first two attempts hit an
// injected campaign-level fault settles successfully on the third, with
// the retries accounted and nothing quarantined.
func TestQuarantineRetryHeals(t *testing.T) {
	pool := faultyPool(1, nil,
		fault.Rule{Site: fault.SiteCampaignPoint, Kind: fault.KindError, Every: 1, Limit: 2})
	defer pool.Close()
	eng := NewEngine(pool, nil, nil)

	final := runCampaign(t, eng, &Spec{
		Name:           "retry-heals",
		Strategy:       StrategyGrid,
		Base:           bdSystem(),
		Axes:           []Axis{{Param: ParamWCETPct, Min: 100, Max: 100, Step: 100}},
		Parallel:       1,
		RetryBackoffMS: 1,
	})
	if final.Status != StatusDone {
		t.Fatalf("status = %s (%s)", final.Status, final.Error)
	}
	if len(final.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(final.Points))
	}
	p := final.Points[0]
	if p.Source != SourceComputed || !p.Schedulable || p.Error != "" {
		t.Errorf("healed point: source=%s schedulable=%v error=%q", p.Source, p.Schedulable, p.Error)
	}
	if final.Convergence.Retries != 2 {
		t.Errorf("retries = %d, want 2", final.Convergence.Retries)
	}
	if final.Convergence.Failed != 0 {
		t.Errorf("failed points = %d, want 0", final.Convergence.Failed)
	}
	res := pool.Resilience()
	if got := res.PointRetries.Load(); got != 2 {
		t.Errorf("PointRetries = %d, want 2", got)
	}
	if got := res.PointsQuarantined.Load(); got != 0 {
		t.Errorf("PointsQuarantined = %d, want 0", got)
	}
}

// TestQuarantineExhaustion: with retries disabled, an injected point is
// quarantined — recorded failed — while the rest of the grid completes,
// and the campaign still finishes Done.
func TestQuarantineExhaustion(t *testing.T) {
	pool := faultyPool(1, nil,
		fault.Rule{Site: fault.SiteCampaignPoint, Kind: fault.KindError, Every: 1, Limit: 1})
	defer pool.Close()
	eng := NewEngine(pool, nil, nil)

	final := runCampaign(t, eng, &Spec{
		Name:     "quarantine",
		Strategy: StrategyGrid,
		Base:     bdSystem(),
		Axes:     []Axis{{Param: ParamWCETPct, Min: 100, Max: 200, Step: 100}},
		Parallel: 1,
		Retries:  -1,
	})
	if final.Status != StatusDone {
		t.Fatalf("status = %s (%s)", final.Status, final.Error)
	}
	if len(final.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(final.Points))
	}
	var failed, ok int
	for _, p := range final.Points {
		if p.Source == SourceFailed {
			failed++
			if p.Error == "" {
				t.Error("quarantined point has no error")
			}
		} else {
			ok++
			if !p.Schedulable {
				t.Errorf("point %s unexpectedly unschedulable", p.Point.Key())
			}
		}
	}
	if failed != 1 || ok != 1 {
		t.Fatalf("failed=%d ok=%d, want 1/1", failed, ok)
	}
	if final.Convergence.Failed != 1 || final.Convergence.Retries != 0 {
		t.Errorf("convergence failed=%d retries=%d, want 1/0",
			final.Convergence.Failed, final.Convergence.Retries)
	}
	if got := pool.Resilience().PointsQuarantined.Load(); got != 1 {
		t.Errorf("PointsQuarantined = %d, want 1", got)
	}
	sum := final.Summarize()
	if sum.Points.Failed != 1 || sum.Points.Total != 2 {
		t.Errorf("summary failed=%d total=%d, want 1/2", sum.Points.Failed, sum.Points.Total)
	}
}

// TestResumeHealsQuarantinedPoint: a campaign checkpointed with a
// quarantined point, resumed on a healthy pool, re-evaluates that point
// and overwrites the stale failed record in place — no duplicate records,
// no lingering failed count.
func TestResumeHealsQuarantinedPoint(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{PinnedKinds: []string{StoreKind()}})
	if err != nil {
		t.Fatal(err)
	}

	spec := &Spec{
		Name:     "heal-on-resume",
		Strategy: StrategyGrid,
		Base:     bdSystem(),
		Axes:     []Axis{{Param: ParamWCETPct, Min: 100, Max: 300, Step: 100}},
		Parallel: 1,
		Retries:  -1,
	}
	pool1 := faultyPool(1, st,
		fault.Rule{Site: fault.SiteCampaignPoint, Kind: fault.KindError, Every: 1, Limit: 1})
	eng1 := NewEngine(pool1, st, nil)
	final := runCampaign(t, eng1, spec)
	if final.Status != StatusDone {
		t.Fatalf("first run status = %s (%s)", final.Status, final.Error)
	}
	if final.Convergence.Failed != 1 {
		t.Fatalf("first run failed points = %d, want 1", final.Convergence.Failed)
	}
	pool1.Close()

	// Mark the campaign running again, as if it had been interrupted
	// right after quarantining the point.
	rewound := final.clone()
	rewound.Status = StatusRunning
	if err := st.Put(StoreKind(), rewound.ID, &rewound); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := store.Open(dir, store.Options{PinnedKinds: []string{StoreKind()}})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	pool2 := jobs.New(jobs.Options{Workers: 1, Store: st2})
	defer pool2.Close()
	eng2 := NewEngine(pool2, st2, nil)

	if resumed := eng2.ResumeAll(); len(resumed) != 1 || resumed[0] != final.ID {
		t.Fatalf("resumed = %v, want [%s]", resumed, final.ID)
	}
	ctx, cancel := context.WithTimeout(t.Context(), 2*time.Minute)
	defer cancel()
	done, err := eng2.Wait(ctx, final.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone {
		t.Fatalf("resumed status = %s (%s)", done.Status, done.Error)
	}
	// The stale failed record was overwritten in place, not appended.
	if len(done.Points) != 3 {
		t.Fatalf("resumed points = %d, want 3", len(done.Points))
	}
	if done.Convergence.Failed != 0 {
		t.Errorf("resumed failed points = %d, want 0", done.Convergence.Failed)
	}
	seen := map[string]int{}
	for _, p := range done.Points {
		seen[p.Point.Key()]++
		if p.Source == SourceFailed {
			t.Errorf("point %s still failed after resume", p.Point.Key())
		}
		if !p.Schedulable {
			t.Errorf("point %s unexpectedly unschedulable", p.Point.Key())
		}
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("point %s recorded %d times", k, n)
		}
	}
	// Only the healed point goes through the pool; the other two answer
	// from the checkpoint.
	if got := done.Convergence.CheckpointHits; got != 2 {
		t.Errorf("checkpoint hits = %d, want 2", got)
	}
}

// TestCancelPropagatesToPool: canceling a campaign cancels its in-flight
// pool jobs. Workers here sleep 10s per run under an injected latency
// fault; the whole cancellation must settle in a small fraction of that,
// which only happens if the workers observe context cancellation.
func TestCancelPropagatesToPool(t *testing.T) {
	pool := faultyPool(2, nil,
		fault.Rule{Site: fault.SiteWorkerLatency, Kind: fault.KindLatency, Every: 1, Latency: 10 * time.Second})
	defer pool.Close()
	eng := NewEngine(pool, nil, nil)

	st, err := eng.Start(&Spec{
		Name:      "cancel-propagation",
		Strategy:  StrategyGrid,
		Base:      bdSystem(),
		Axes:      []Axis{{Param: ParamWCETPct, Min: 100, Max: 500, Step: 1}},
		Parallel:  2,
		MaxPoints: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitCond(t, "a pool job running", func() bool { return pool.Metrics().Running > 0 })

	start := time.Now()
	if !eng.Cancel(st.ID) {
		t.Fatal("cancel failed")
	}
	ctx, cancel := context.WithTimeout(t.Context(), 30*time.Second)
	defer cancel()
	final, err := eng.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCanceled {
		t.Fatalf("status = %s (%s)", final.Status, final.Error)
	}
	// The in-flight jobs must drain as canceled, promptly — well before
	// their injected 10s latency would have elapsed on its own.
	waitCond(t, "pool drained", func() bool {
		m := pool.Metrics()
		return m.Running == 0 && m.Queued == 0
	})
	if m := pool.Metrics(); m.Canceled == 0 {
		t.Errorf("pool canceled = %d, want > 0", m.Canceled)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %s; workers did not observe cancel", elapsed)
	}
}

// waitCond polls cond for up to 5s.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

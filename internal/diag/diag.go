// Package diag turns the typed failures of the analysis pipeline — budget
// exhaustion, cancellation, timelocks, livelocks, expression semantics
// errors and configuration defects — into a uniform Report that the command
// line tools print, serialize as JSON and map onto distinct exit codes.
//
// The exit-code contract shared by cmd/simulate, cmd/mcheck and cmd/verify:
//
//	0  analysis completed, verdict positive
//	1  operational error (I/O, malformed input, internal failure)
//	2  usage error (bad flags)
//	3  analysis completed, verdict negative (not schedulable / violation)
//	4  resource budget exhausted or run canceled; result is partial
//	5  model diagnostic: timelock, livelock or expression semantics error
//	6  invalid configuration (rejected by validation)
package diag

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/obs"
	"stopwatchsim/internal/sa"
)

// Exit codes of the analysis tools. Verdict codes are not produced by
// FromError (an unfavourable verdict is not an error); tools use them
// directly.
const (
	ExitOK         = 0
	ExitError      = 1
	ExitUsage      = 2
	ExitVerdict    = 3 // verdict negative: not schedulable, observer violation
	ExitBudget     = 4 // budget exhausted or canceled; partial result
	ExitDiagnostic = 5 // timelock, livelock or semantics error in the model
	ExitConfig     = 6 // configuration rejected by validation
)

// Kind classifies a report for machine consumption.
type Kind string

// Report kinds.
const (
	KindOK        Kind = "ok"
	KindError     Kind = "error"
	KindBudget    Kind = "budget-exhausted"
	KindCanceled  Kind = "canceled"
	KindDeadlock  Kind = "deadlock"
	KindSemantics Kind = "semantics-error"
	KindConfig    Kind = "invalid-config"
)

// TraceEvent is one rendered synchronization event of a counterexample or
// partial-run prefix.
type TraceEvent struct {
	Time  int64  `json:"time"`
	Event string `json:"event"`
}

// Blocked mirrors nsa.BlockedAutomaton for serialization.
type Blocked struct {
	Automaton  string   `json:"automaton"`
	Location   string   `json:"location"`
	Committed  bool     `json:"committed,omitempty"`
	Invariant  string   `json:"invariant,omitempty"`
	UrgentChan string   `json:"urgent_chan,omitempty"`
	Edges      []string `json:"edges,omitempty"`
}

// Report is the structured failure description a tool emits on stderr and,
// with -report, as JSON.
type Report struct {
	Tool     string `json:"tool"`
	Kind     Kind   `json:"kind"`
	ExitCode int    `json:"exit_code"`
	Message  string `json:"message"`

	// Budget / cancellation detail (KindBudget, KindCanceled).
	Reason string `json:"reason,omitempty"`
	Steps  int64  `json:"steps,omitempty"`
	States int    `json:"states,omitempty"`

	// Model time reached or at which the failure occurred.
	Time int64 `json:"model_time"`

	// Deadlock detail (KindDeadlock).
	DeadlockKind string    `json:"deadlock_kind,omitempty"`
	Blocked      []Blocked `json:"blocked,omitempty"`

	// Semantics detail (KindSemantics).
	Automaton string `json:"automaton,omitempty"`
	Location  string `json:"location,omitempty"`
	Expr      string `json:"expr,omitempty"`

	// Configuration detail (KindConfig).
	Where string `json:"where,omitempty"`

	// Trace is the bounded synchronization-event suffix leading to the
	// failure, oldest first.
	Trace []TraceEvent `json:"trace,omitempty"`

	// Telemetry is the run's RunReport (phase durations and engine
	// hot-path counters) up to the point of failure, when the tool
	// collected one.
	Telemetry *obs.RunReport `json:"telemetry,omitempty"`

	// Flight is the flight-recorder dump: the last engine events before
	// the failure, oldest first, when a recorder was armed.
	Flight []obs.FlightEvent `json:"flight,omitempty"`
}

// renderEvent names an event's channel and participants against net; with a
// nil network it falls back to indices.
func renderEvent(ev nsa.SyncEvent, net *nsa.Network) string {
	if net == nil {
		return fmt.Sprintf("chan#%d parts=%v", ev.Chan, ev.Parts)
	}
	tr := nsa.Transition{Kind: ev.Kind, Chan: sa.ChanID(ev.Chan), Parts: ev.Parts}
	return tr.String(net)
}

// RenderTrace converts raw synchronization events into display form.
func RenderTrace(events []nsa.SyncEvent, net *nsa.Network) []TraceEvent {
	if len(events) == 0 {
		return nil
	}
	out := make([]TraceEvent, len(events))
	for i, ev := range events {
		out[i] = TraceEvent{Time: ev.Time, Event: renderEvent(ev, net)}
	}
	return out
}

// FromError classifies err into a Report, or returns nil when err is nil.
// net, when non-nil, is used to render trace prefixes with automaton and
// channel names; pass nil when the failure predates model construction.
func FromError(tool string, err error, net *nsa.Network) *Report {
	if err == nil {
		return nil
	}
	r := &Report{Tool: tool, Kind: KindError, ExitCode: ExitError, Message: err.Error()}

	var rerr *nsa.RunError
	var derr *nsa.DeadlockError
	var serr *nsa.SemanticsError
	var verr *config.ValidationError
	switch {
	case errors.As(err, &rerr):
		r.Kind = KindBudget
		if rerr.Reason == nsa.StopCanceled {
			r.Kind = KindCanceled
		}
		r.ExitCode = ExitBudget
		r.Reason = rerr.Reason.String()
		r.Steps = rerr.Steps
		r.States = rerr.States
		r.Time = rerr.Time
		r.Trace = RenderTrace(rerr.Trace, net)
	case errors.As(err, &derr):
		r.Kind = KindDeadlock
		r.ExitCode = ExitDiagnostic
		r.Time = derr.Time
		r.DeadlockKind = derr.Kind.String()
		for i := range derr.Blocked {
			b := &derr.Blocked[i]
			r.Blocked = append(r.Blocked, Blocked{
				Automaton:  b.Automaton,
				Location:   b.Location,
				Committed:  b.Committed,
				Invariant:  b.Invariant,
				UrgentChan: b.UrgentChan,
				Edges:      b.Edges,
			})
		}
		r.Trace = RenderTrace(derr.Trace, net)
	case errors.As(err, &serr):
		r.Kind = KindSemantics
		r.ExitCode = ExitDiagnostic
		r.Time = serr.Time
		r.Automaton = serr.Automaton
		r.Location = serr.Location
		r.Expr = serr.Expr
	case errors.As(err, &verr):
		r.Kind = KindConfig
		r.ExitCode = ExitConfig
		r.Where = verr.Where
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText prints a human-readable rendering to w: the message, any
// blocked-automaton detail, and the trace prefix.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", r.Tool, r.Message)
	for i := range r.Blocked {
		b := &r.Blocked[i]
		fmt.Fprintf(w, "  blocked: %s in %q\n", b.Automaton, b.Location)
		if b.Committed {
			fmt.Fprintf(w, "    committed location forbids delay\n")
		}
		if b.Invariant != "" {
			fmt.Fprintf(w, "    invariant %s forbids delay\n", b.Invariant)
		}
		if b.UrgentChan != "" {
			fmt.Fprintf(w, "    urgent channel %q pending\n", b.UrgentChan)
		}
		for _, e := range b.Edges {
			fmt.Fprintf(w, "    %s\n", e)
		}
	}
	if len(r.Trace) > 0 {
		fmt.Fprintf(w, "  trace prefix (last %d events):\n", len(r.Trace))
		for _, ev := range r.Trace {
			fmt.Fprintf(w, "    t=%-6d %s\n", ev.Time, ev.Event)
		}
	}
}

// Exit prints the report for err to stderr, writes the JSON report to
// reportPath when non-empty, and terminates the process with the mapped
// exit code. A nil err is a no-op so callers can invoke it unconditionally.
func Exit(tool string, err error, net *nsa.Network, reportPath string) {
	ExitWith(tool, err, net, reportPath, nil)
}

// ExitWith is Exit with the run's telemetry attached to the report, so a
// failed run's -report JSON still carries its phase timings and engine
// counters up to the failure.
func ExitWith(tool string, err error, net *nsa.Network, reportPath string, run *obs.RunReport) {
	r := FromError(tool, err, net)
	if r == nil {
		return
	}
	r.Telemetry = run
	r.WriteText(os.Stderr)
	if reportPath != "" {
		if werr := writeReportFile(reportPath, r); werr != nil {
			fmt.Fprintf(os.Stderr, "%s: writing report: %v\n", tool, werr)
		}
	}
	os.Exit(r.ExitCode)
}

// WriteSuccess writes a success report to reportPath: kind "ok", exit code
// 0, with the run's telemetry. It makes -report useful on clean runs —
// before, the flag only produced a file on failure.
func WriteSuccess(tool, reportPath string, run *obs.RunReport) error {
	if reportPath == "" {
		return nil
	}
	r := &Report{Tool: tool, Kind: KindOK, ExitCode: ExitOK,
		Message: "analysis completed", Telemetry: run}
	return writeReportFile(reportPath, r)
}

func writeReportFile(path string, r *Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

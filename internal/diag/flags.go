package diag

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"syscall"

	"stopwatchsim/internal/nsa"
)

// BudgetFlags registers the shared resource-limit flags (-max-steps,
// -timeout, -max-mem-mb) on the default flag set and returns a function
// that assembles the nsa.Budget once flag.Parse has run.
func BudgetFlags() func() nsa.Budget {
	steps := flag.Int64("max-steps", 0, "stop after this many transitions (0 = unlimited)")
	wall := flag.Duration("timeout", 0, "stop after this much wall time, e.g. 30s (0 = unlimited)")
	mem := flag.Int64("max-mem-mb", 0, "stop when the Go heap exceeds this many MiB (0 = unlimited)")
	return func() nsa.Budget {
		b := nsa.Budget{MaxSteps: *steps, MaxWallTime: *wall}
		if *mem > 0 {
			b.MaxMemoryBytes = uint64(*mem) << 20
		}
		return b
	}
}

// SignalContext returns a context canceled on SIGINT or SIGTERM, so an
// interrupted analysis stops at the next budget checkpoint and reports its
// partial progress instead of dying mid-run.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

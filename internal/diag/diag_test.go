package diag

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"stopwatchsim/internal/config"
	"stopwatchsim/internal/nsa"
)

func TestFromErrorNil(t *testing.T) {
	if FromError("tool", nil, nil) != nil {
		t.Error("nil error must produce no report")
	}
}

func TestFromErrorClassification(t *testing.T) {
	cases := []struct {
		err  error
		kind Kind
		code int
	}{
		{&nsa.RunError{Reason: nsa.StopSteps, Time: 7, Steps: 100}, KindBudget, ExitBudget},
		{&nsa.RunError{Reason: nsa.StopCanceled, Cause: context.Canceled}, KindCanceled, ExitBudget},
		{&nsa.DeadlockError{Kind: nsa.Timelock, Time: 2, Msg: "stuck",
			Blocked: []nsa.BlockedAutomaton{{Automaton: "A", Location: "W", Invariant: "t <= 2"}}},
			KindDeadlock, ExitDiagnostic},
		{&nsa.SemanticsError{Time: 3, Msg: "division by zero", Automaton: "A", Expr: "1/x"},
			KindSemantics, ExitDiagnostic},
		{&config.ValidationError{Where: "task P1.T", Msg: "bad period"}, KindConfig, ExitConfig},
		{errors.New("open foo: no such file"), KindError, ExitError},
		{fmt.Errorf("wrapped: %w", &nsa.RunError{Reason: nsa.StopWallTime}), KindBudget, ExitBudget},
	}
	for i, c := range cases {
		r := FromError("tool", c.err, nil)
		if r.Kind != c.kind || r.ExitCode != c.code {
			t.Errorf("case %d: kind=%s code=%d, want %s/%d", i, r.Kind, r.ExitCode, c.kind, c.code)
		}
		if r.Message == "" {
			t.Errorf("case %d: empty message", i)
		}
	}
}

func TestReportDetailAndJSON(t *testing.T) {
	err := &nsa.DeadlockError{
		Kind: nsa.Timelock, Time: 2, Msg: "no delay, no action enabled",
		Blocked: []nsa.BlockedAutomaton{{
			Automaton: "A", Location: "W", Invariant: "t <= 2",
			Edges: []string{`edge W -> D: no partner ready on channel "never"`},
		}},
	}
	r := FromError("mcheck", err, nil)
	if r.DeadlockKind != "time-stop deadlock" || r.Time != 2 {
		t.Errorf("report = %+v", r)
	}
	if len(r.Blocked) != 1 || r.Blocked[0].Automaton != "A" || r.Blocked[0].Invariant != "t <= 2" {
		t.Errorf("blocked = %+v", r.Blocked)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if decoded.ExitCode != ExitDiagnostic || decoded.Blocked[0].Location != "W" {
		t.Errorf("decoded = %+v", decoded)
	}

	var txt bytes.Buffer
	r.WriteText(&txt)
	for _, want := range []string{"mcheck:", "blocked: A", "t <= 2", "never"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text = %q, want %q", txt.String(), want)
		}
	}
}

func TestRenderTraceFallback(t *testing.T) {
	events := []nsa.SyncEvent{{Time: 5, Chan: 2}}
	got := RenderTrace(events, nil)
	if len(got) != 1 || got[0].Time != 5 || !strings.Contains(got[0].Event, "2") {
		t.Errorf("rendered = %+v", got)
	}
	if RenderTrace(nil, nil) != nil {
		t.Error("empty trace must render to nil")
	}
}

// Package fault is a seeded, deterministic fault-injection framework and
// the resilience primitives built to survive what it injects.
//
// The paper's value proposition is trustworthy verdicts, and the
// compositional avionics analyses it cites (Han et al.) are motivated by
// fault containment: a fault in one module must not invalidate the rest.
// The same principle governs this runtime — an injected disk error, a
// torn journal write, a panicking worker or a wedged run must degrade,
// retry or quarantine, never corrupt results or wedge the service. This
// package supplies both halves of that contract:
//
//   - Injector: named hook points (Site constants) threaded through
//     internal/store (object writes, journal append/fsync, reads,
//     recovery), internal/jobs (worker execution, injected latency) and
//     internal/campaign (per-point outcomes). Faults fire by seeded
//     probability or by deterministic sequence point (every Nth hit), in
//     four kinds: plain I/O errors, short writes, engine panics and
//     injected latency. A nil *Injector is the production configuration:
//     every hook is a nil-check branch, no allocation, no lock.
//   - RetryPolicy: bounded retry with exponential backoff for transient
//     failures (Retry / Do).
//   - Breaker (breaker.go): a circuit breaker that trips a failing tier
//     into a flagged degraded mode and probes it for recovery.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Site names one fault-injection hook point. The constants below are the
// complete hook map; ParsePlan rejects unknown sites so a chaos plan with
// a typo fails loudly instead of silently injecting nothing.
type Site string

// The injector hook map.
const (
	// SiteStoreObjectWrite fires in the store's atomic object write, before
	// the payload lands in the temp file. Short-write faults leave a
	// truncated temp file behind, as a torn disk write would.
	SiteStoreObjectWrite Site = "store.object.write"
	// SiteStoreObjectSync fires at the temp-file fsync of an object write.
	SiteStoreObjectSync Site = "store.object.sync"
	// SiteStoreJournalAppend fires in the journal append, before the frame
	// is written. Short-write faults write a partial frame, which the
	// journal immediately self-repairs by truncating to the last
	// acknowledged record.
	SiteStoreJournalAppend Site = "store.journal.append"
	// SiteStoreJournalSync fires at the per-append journal fsync.
	SiteStoreJournalSync Site = "store.journal.sync"
	// SiteStoreRead fires in Store.Get's object file read.
	SiteStoreRead Site = "store.read"
	// SiteStoreRecoveryRead fires in the journal replay read at Open;
	// recovery treats an injected read error as a torn tail (bounded
	// degradation: later entries drop, nothing corrupts).
	SiteStoreRecoveryRead Site = "store.recovery.read"
	// SiteWorkerRun fires in a pool worker as it starts a dequeued run.
	// Error faults fail the run; panic faults panic in the worker (the
	// pool recovers them into failed jobs).
	SiteWorkerRun Site = "jobs.worker.run"
	// SiteWorkerLatency fires in a pool worker before the run; latency
	// faults stall it (context-aware), simulating a wedged worker for the
	// stuck-job watchdog to deadline and requeue.
	SiteWorkerLatency Site = "jobs.worker.latency"
	// SiteCampaignPoint fires in campaign point evaluation before the
	// point is submitted; error faults fail the attempt, exercising the
	// retry-then-quarantine path.
	SiteCampaignPoint Site = "campaign.point"
)

// knownSites indexes the hook map for plan validation.
var knownSites = map[Site]bool{
	SiteStoreObjectWrite:   true,
	SiteStoreObjectSync:    true,
	SiteStoreJournalAppend: true,
	SiteStoreJournalSync:   true,
	SiteStoreRead:          true,
	SiteStoreRecoveryRead:  true,
	SiteWorkerRun:          true,
	SiteWorkerLatency:      true,
	SiteCampaignPoint:      true,
}

// Sites returns the complete hook map, sorted.
func Sites() []Site {
	out := make([]Site, 0, len(knownSites))
	for s := range knownSites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Kind classifies an injected fault.
type Kind string

// Fault kinds.
const (
	// KindError injects a plain error return.
	KindError Kind = "error"
	// KindShortWrite injects a torn write: the hook writes a prefix of the
	// payload, then errors.
	KindShortWrite Kind = "short"
	// KindPanic injects a panic at the hook.
	KindPanic Kind = "panic"
	// KindLatency injects a delay (Rule.Latency) at the hook.
	KindLatency Kind = "latency"
)

// Rule arms one site with one fault. A rule fires deterministically on
// sequence points (Every) and/or probabilistically (Prob) from the plan's
// seeded RNG; both zero means the rule never fires.
type Rule struct {
	Site Site `json:"site"`
	// Kind is the injected fault kind; "" means KindError.
	Kind Kind `json:"kind,omitempty"`
	// Prob fires the rule on each hit with this probability.
	Prob float64 `json:"prob,omitempty"`
	// Every fires the rule deterministically on every Nth hit of the site
	// (counted after the After skip).
	Every int64 `json:"every,omitempty"`
	// After skips the first After hits of the site before the rule arms.
	After int64 `json:"after,omitempty"`
	// Limit caps the rule's total injections; 0 means unlimited.
	Limit int64 `json:"limit,omitempty"`
	// Latency is the injected delay of KindLatency rules.
	Latency time.Duration `json:"latency,omitempty"`
}

// Plan is a full injector configuration: a seed and the armed rules.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// ChaosPlan is the canonical randomized-chaos configuration used by
// cmd/chaos and the soak harness: transient error and short-write faults
// at the given rate across every store tier, worker-run errors, a reduced
// rate of worker panics, and campaign point failures. rate 0 arms nothing
// (the plan is then a verified no-op).
func ChaosPlan(seed int64, rate float64) Plan {
	p := Plan{Seed: seed}
	if rate <= 0 {
		return p
	}
	p.Rules = []Rule{
		{Site: SiteStoreObjectWrite, Kind: KindShortWrite, Prob: rate},
		{Site: SiteStoreObjectSync, Kind: KindError, Prob: rate},
		{Site: SiteStoreJournalAppend, Kind: KindShortWrite, Prob: rate},
		{Site: SiteStoreJournalSync, Kind: KindError, Prob: rate},
		{Site: SiteStoreRead, Kind: KindError, Prob: rate},
		{Site: SiteWorkerRun, Kind: KindError, Prob: rate},
		{Site: SiteWorkerRun, Kind: KindPanic, Prob: rate / 4},
		{Site: SiteCampaignPoint, Kind: KindError, Prob: rate},
	}
	return p
}

// ParsePlan parses the compact flag syntax used by cmd/chaos and saserve
// -faults:
//
//	site:key=val,key=val;site:key=val...
//
// with keys p (probability), every, after, limit, kind (error, short,
// panic, latency) and latency (Go duration). Example:
//
//	store.journal.sync:p=0.05;jobs.worker.run:every=97,kind=panic
//
// An empty spec returns an empty plan (no rules).
func ParsePlan(spec string, seed int64) (Plan, error) {
	p := Plan{Seed: seed}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, kvs, ok := strings.Cut(part, ":")
		if !ok {
			return p, fmt.Errorf("fault: rule %q needs site:key=val[,...]", part)
		}
		r := Rule{Site: Site(strings.TrimSpace(site)), Kind: KindError}
		if !knownSites[r.Site] {
			return p, fmt.Errorf("fault: unknown site %q (known: %v)", site, Sites())
		}
		for _, kv := range strings.Split(kvs, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return p, fmt.Errorf("fault: rule %q has malformed option %q", part, kv)
			}
			var err error
			switch k {
			case "p", "prob":
				r.Prob, err = strconv.ParseFloat(v, 64)
				if err == nil && (r.Prob < 0 || r.Prob > 1) {
					err = fmt.Errorf("out of [0,1]")
				}
			case "every":
				r.Every, err = strconv.ParseInt(v, 10, 64)
			case "after":
				r.After, err = strconv.ParseInt(v, 10, 64)
			case "limit":
				r.Limit, err = strconv.ParseInt(v, 10, 64)
			case "kind":
				switch Kind(v) {
				case KindError, KindShortWrite, KindPanic, KindLatency:
					r.Kind = Kind(v)
				default:
					err = fmt.Errorf("unknown kind")
				}
			case "latency":
				r.Latency, err = time.ParseDuration(v)
			default:
				err = fmt.Errorf("unknown option")
			}
			if err != nil {
				return p, fmt.Errorf("fault: rule %q option %q: %v", part, kv, err)
			}
		}
		if r.Kind == KindLatency && r.Latency <= 0 {
			return p, fmt.Errorf("fault: rule %q: latency kind needs latency=D", part)
		}
		if r.Prob == 0 && r.Every == 0 {
			return p, fmt.Errorf("fault: rule %q never fires (set p= or every=)", part)
		}
		p.Rules = append(p.Rules, r)
	}
	return p, nil
}

// Error is the error type of every injected fault, so resilience layers
// (and tests) can tell injected failures from organic ones with
// IsInjected.
type Error struct {
	Site Site
	Kind Kind
	// Seq is the process-wide injection sequence number, for correlating
	// logs with deterministic plans.
	Seq int64
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s at %s (#%d)", e.Kind, e.Site, e.Seq)
}

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// IsShortWrite reports whether err is an injected short-write fault.
func IsShortWrite(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Kind == KindShortWrite
}

// Fault is one fired injection, returned by Hit.
type Fault struct {
	Site    Site
	Kind    Kind
	Latency time.Duration
	seq     int64
}

// Err returns the fault as an *Error.
func (f *Fault) Err() error { return &Error{Site: f.Site, Kind: f.Kind, Seq: f.seq} }

// ruleState is a Rule plus its firing accounting.
type ruleState struct {
	Rule
	injected int64
}

// SiteStats counts one site's activity: hook executions and injections.
type SiteStats struct {
	Hits     int64 `json:"hits"`
	Injected int64 `json:"injected"`
}

// Injector evaluates armed rules at hook points. A nil *Injector is the
// disabled injector: every method returns immediately on a nil check, so
// production paths pay one predictable branch and nothing else. A non-nil
// Injector is safe for concurrent use; probability draws come from one
// seeded RNG under the mutex, so single-threaded runs are exactly
// reproducible and concurrent runs are reproducible per interleaving.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rules    map[Site][]*ruleState
	stats    map[Site]*SiteStats
	seq      int64
	onInject func(site Site, seq int64)
}

// OnInject registers an observer called for every injected fault with
// the site and the global injection sequence number — the flight-recorder
// hook. The observer runs under the injector lock (keep it fast and
// non-reentrant); registering on a nil injector is a no-op.
func (i *Injector) OnInject(fn func(site Site, seq int64)) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.onInject = fn
	i.mu.Unlock()
}

// New builds an injector from a plan. A plan with no rules yields a valid
// injector that never fires (useful for verified-no-op soak runs).
func New(p Plan) *Injector {
	inj := &Injector{
		rng:   rand.New(rand.NewSource(p.Seed)),
		rules: make(map[Site][]*ruleState),
		stats: make(map[Site]*SiteStats),
	}
	for _, r := range p.Rules {
		if r.Kind == "" {
			r.Kind = KindError
		}
		inj.rules[r.Site] = append(inj.rules[r.Site], &ruleState{Rule: r})
	}
	return inj
}

// Hit executes the hook at site: it counts the hit, evaluates the armed
// rules in plan order, and returns the first fault that fires (nil in the
// common case). Nil-safe.
func (i *Injector) Hit(site Site) *Fault {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	st := i.stats[site]
	if st == nil {
		st = &SiteStats{}
		i.stats[site] = st
	}
	st.Hits++
	for _, r := range i.rules[site] {
		if r.Limit > 0 && r.injected >= r.Limit {
			continue
		}
		n := st.Hits - r.After
		if n <= 0 {
			continue
		}
		fire := r.Every > 0 && n%r.Every == 0
		if !fire && r.Prob > 0 {
			fire = i.rng.Float64() < r.Prob
		}
		if !fire {
			continue
		}
		r.injected++
		st.Injected++
		i.seq++
		if i.onInject != nil {
			i.onInject(site, i.seq)
		}
		return &Fault{Site: site, Kind: r.Kind, Latency: r.Latency, seq: i.seq}
	}
	return nil
}

// Fail is the error-only hook: it returns the injected error when a fault
// fires at site, nil otherwise. Latency and panic faults armed at the
// site surface as plain errors here — use Hit where those kinds must act.
// Nil-safe.
func (i *Injector) Fail(site Site) error {
	if i == nil {
		return nil
	}
	if f := i.Hit(site); f != nil {
		return f.Err()
	}
	return nil
}

// Stats snapshots per-site hit and injection counts. Nil-safe (empty).
func (i *Injector) Stats() map[Site]SiteStats {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[Site]SiteStats, len(i.stats))
	for s, st := range i.stats {
		out[s] = *st
	}
	return out
}

// TotalInjected sums injections across all sites. Nil-safe (zero).
func (i *Injector) TotalInjected() int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	var n int64
	for _, st := range i.stats {
		n += st.Injected
	}
	return n
}

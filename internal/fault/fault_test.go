package fault

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var inj *Injector
	if f := inj.Hit(SiteStoreRead); f != nil {
		t.Fatalf("nil injector fired %v", f)
	}
	if err := inj.Fail(SiteWorkerRun); err != nil {
		t.Fatalf("nil injector failed: %v", err)
	}
	if got := inj.Stats(); got != nil {
		t.Fatalf("nil injector has stats %v", got)
	}
	if n := inj.TotalInjected(); n != 0 {
		t.Fatalf("nil injector injected %d", n)
	}
}

// The disabled path must add zero allocations to the hot paths it guards.
func TestNilInjectorAllocs(t *testing.T) {
	var inj *Injector
	if n := testing.AllocsPerRun(1000, func() {
		if inj.Hit(SiteStoreJournalSync) != nil {
			t.Fatal("fired")
		}
		if inj.Fail(SiteStoreObjectWrite) != nil {
			t.Fatal("failed")
		}
	}); n != 0 {
		t.Fatalf("nil injector allocates %.1f per hook", n)
	}
}

func TestSequencePointTrigger(t *testing.T) {
	inj := New(Plan{Rules: []Rule{{Site: SiteStoreRead, Kind: KindError, Every: 3, After: 1, Limit: 2}}})
	var fired []int
	for i := 1; i <= 12; i++ {
		if f := inj.Hit(SiteStoreRead); f != nil {
			fired = append(fired, i)
			if f.Kind != KindError {
				t.Fatalf("hit %d kind %s", i, f.Kind)
			}
		}
	}
	// After=1 skips hit 1; Every=3 then fires on hits 4, 7, 10…; Limit=2
	// stops after two injections.
	want := []int{4, 7}
	if fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	st := inj.Stats()[SiteStoreRead]
	if st.Hits != 12 || st.Injected != 2 {
		t.Fatalf("stats %+v", st)
	}
	if inj.TotalInjected() != 2 {
		t.Fatalf("total %d", inj.TotalInjected())
	}
}

func TestProbabilityTriggerIsSeededDeterministic(t *testing.T) {
	run := func() []int {
		inj := New(Plan{Seed: 42, Rules: []Rule{{Site: SiteWorkerRun, Kind: KindError, Prob: 0.3}}})
		var fired []int
		for i := 0; i < 100; i++ {
			if inj.Hit(SiteWorkerRun) != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 100 {
		t.Fatalf("p=0.3 over 100 hits fired %d times", len(a))
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different firings:\n%v\n%v", a, b)
	}
	diff := New(Plan{Seed: 43, Rules: []Rule{{Site: SiteWorkerRun, Kind: KindError, Prob: 0.3}}})
	var c []int
	for i := 0; i < 100; i++ {
		if diff.Hit(SiteWorkerRun) != nil {
			c = append(c, i)
		}
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds fired identically")
	}
}

func TestInjectedErrorClassification(t *testing.T) {
	inj := New(Plan{Rules: []Rule{
		{Site: SiteStoreObjectWrite, Kind: KindShortWrite, Every: 1},
		{Site: SiteStoreRead, Kind: KindError, Every: 1},
	}})
	werr := inj.Hit(SiteStoreObjectWrite).Err()
	rerr := inj.Fail(SiteStoreRead)
	wrapped := fmt.Errorf("store: writing object: %w", werr)
	if !IsInjected(werr) || !IsInjected(rerr) || !IsInjected(wrapped) {
		t.Fatalf("injected errors not classified: %v / %v", werr, rerr)
	}
	if !IsShortWrite(werr) || !IsShortWrite(wrapped) || IsShortWrite(rerr) {
		t.Fatalf("short-write classification wrong: %v / %v", werr, rerr)
	}
	if IsInjected(errors.New("organic")) {
		t.Fatal("organic error classified as injected")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan(" store.journal.sync:p=0.05 ; jobs.worker.run:every=97,kind=panic ; jobs.worker.latency:every=5,kind=latency,latency=250ms,after=2,limit=3 ", 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Rules) != 3 {
		t.Fatalf("plan %+v", p)
	}
	r := p.Rules[2]
	if r.Site != SiteWorkerLatency || r.Kind != KindLatency || r.Latency != 250*time.Millisecond || r.After != 2 || r.Limit != 3 || r.Every != 5 {
		t.Fatalf("rule %+v", r)
	}
	if p.Rules[0].Kind != KindError {
		t.Fatalf("default kind %s", p.Rules[0].Kind)
	}

	for _, bad := range []string{
		"nope.site:p=0.5",                 // unknown site
		"store.read",                      // missing options
		"store.read:p=2",                  // probability out of range
		"store.read:kind=latency,every=1", // latency kind without latency=
		"store.read:kind=weird,p=0.1",     // unknown kind
		"store.read:limit=3",              // never fires
		"store.read:p=x",                  // malformed number
	} {
		if _, err := ParsePlan(bad, 0); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
	if p, err := ParsePlan("", 1); err != nil || len(p.Rules) != 0 {
		t.Fatalf("empty spec: %v %+v", err, p)
	}
}

func TestChaosPlanZeroRateIsEmpty(t *testing.T) {
	if p := ChaosPlan(1, 0); len(p.Rules) != 0 {
		t.Fatalf("zero-rate chaos plan arms %d rules", len(p.Rules))
	}
	p := ChaosPlan(1, 0.05)
	if len(p.Rules) == 0 {
		t.Fatal("chaos plan armed nothing")
	}
	for _, r := range p.Rules {
		if !knownSites[r.Site] {
			t.Fatalf("chaos plan uses unknown site %q", r.Site)
		}
	}
}

func TestRetryPolicyDo(t *testing.T) {
	// Succeeds on the third attempt: two retries.
	calls := 0
	retries, err := RetryPolicy{Attempts: 5, BaseDelay: time.Microsecond}.Do(context.Background(), nil, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || retries != 2 || calls != 3 {
		t.Fatalf("retries=%d calls=%d err=%v", retries, calls, err)
	}

	// Exhausts attempts.
	calls = 0
	retries, err = RetryPolicy{Attempts: 3, BaseDelay: time.Microsecond}.Do(context.Background(), nil, func() error {
		calls++
		return errors.New("persistent")
	})
	if err == nil || retries != 2 || calls != 3 {
		t.Fatalf("retries=%d calls=%d err=%v", retries, calls, err)
	}

	// Non-retryable errors return immediately.
	fatal := errors.New("fatal")
	calls = 0
	retries, err = RetryPolicy{Attempts: 5, BaseDelay: time.Microsecond}.Do(context.Background(),
		func(e error) bool { return !errors.Is(e, fatal) },
		func() error { calls++; return fatal })
	if !errors.Is(err, fatal) || retries != 0 || calls != 1 {
		t.Fatalf("retries=%d calls=%d err=%v", retries, calls, err)
	}

	// Zero policy: one attempt.
	calls = 0
	if _, err := (RetryPolicy{}).Do(context.Background(), nil, func() error { calls++; return errors.New("x") }); err == nil || calls != 1 {
		t.Fatalf("zero policy calls=%d err=%v", calls, err)
	}

	// Canceled context aborts the backoff promptly.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = RetryPolicy{Attempts: 3, BaseDelay: time.Hour}.Do(ctx, nil, func() error { return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
}

func TestFaultSleepIsContextAware(t *testing.T) {
	inj := New(Plan{Rules: []Rule{{Site: SiteWorkerLatency, Kind: KindLatency, Every: 1, Latency: time.Hour}}})
	f := inj.Hit(SiteWorkerLatency)
	if f == nil || f.Kind != KindLatency {
		t.Fatalf("fault %+v", f)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	start := time.Now()
	if err := f.Sleep(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep err=%v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Sleep ignored cancellation")
	}
	// Non-latency faults sleep nothing.
	if err := (&Fault{Kind: KindError}).Sleep(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(3, time.Minute)
	b.now = func() time.Time { return now }

	if !b.Allow() || b.Tripped() || b.State() != BreakerClosed {
		t.Fatal("fresh breaker not closed")
	}
	// Two failures: still closed. A success resets the streak.
	b.Failure()
	b.Failure()
	if b.Tripped() {
		t.Fatal("tripped below threshold")
	}
	if b.Success() {
		t.Fatal("success on closed breaker reported recovery")
	}
	// Three consecutive failures trip it.
	b.Failure()
	b.Failure()
	if tripped := b.Failure(); !tripped {
		t.Fatal("threshold failure did not trip")
	}
	if b.State() != BreakerOpen || !b.Tripped() {
		t.Fatalf("state %s after trip", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed inside cooldown")
	}
	// More failures while open don't re-trip.
	if b.Failure() {
		t.Fatal("open breaker re-tripped")
	}

	// Cooldown elapses: exactly one half-open probe is admitted.
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("probe not admitted after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %s, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	// Failed probe re-opens for another cooldown.
	if !b.Failure() {
		t.Fatal("failed probe did not re-open")
	}
	if b.Allow() {
		t.Fatal("allowed right after failed probe")
	}

	// Next probe succeeds: recovered, closed, flowing again.
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("second probe not admitted")
	}
	if !b.Success() {
		t.Fatal("closing success did not report recovery")
	}
	if b.State() != BreakerClosed || b.Tripped() || !b.Allow() {
		t.Fatal("breaker did not close after successful probe")
	}
}

func TestNilBreaker(t *testing.T) {
	var b *Breaker
	if !b.Allow() || b.Tripped() || b.Failure() || b.Success() || b.State() != BreakerClosed {
		t.Fatal("nil breaker misbehaves")
	}
}

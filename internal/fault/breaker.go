package fault

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's mode.
type BreakerState string

// Breaker states.
const (
	// BreakerClosed: the protected tier is healthy; operations flow.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: the tier tripped; operations short-circuit until the
	// cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: the cooldown elapsed; one probe operation is in
	// flight to test recovery.
	BreakerHalfOpen BreakerState = "half-open"
)

// Breaker is a consecutive-failure circuit breaker. The jobs pool wraps
// its persistent disk tier in one: when the store fails Threshold times in
// a row (after per-operation retries), the breaker opens and the tier
// degrades to memory-only — reads and writes short-circuit instead of
// stalling workers behind a dead disk. After Cooldown, the next operation
// is let through as a half-open probe; success closes the breaker,
// failure re-opens it for another cooldown.
//
// A nil *Breaker never trips: Allow always true, Failure/Success no-ops.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test hook

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures (<= 0 means 5) and probes for recovery after cooldown (<= 0
// means 5s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now, state: BreakerClosed}
}

// Allow reports whether the protected tier may be used right now. Open
// breakers deny until the cooldown elapses, then admit exactly one probe
// (half-open); further calls deny until that probe settles. Nil-safe
// (always true).
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful operation. It returns true when the
// success closed a tripped breaker (the tier recovered). Nil-safe.
func (b *Breaker) Success() (recovered bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	recovered = b.state != BreakerClosed
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
	return recovered
}

// Failure records a failed operation. It returns true when this failure
// tripped the breaker open (from closed, or a failed half-open probe).
// Nil-safe.
func (b *Breaker) Failure() (tripped bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails < b.threshold {
			return false
		}
	case BreakerOpen:
		return false // already open; cooldown keeps running
	}
	// Closed at threshold, or a failed half-open probe: (re-)open.
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.probing = false
	return true
}

// State returns the breaker's current mode. An open breaker past its
// cooldown still reports open until an Allow admits the probe. Nil-safe
// (closed).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Tripped reports whether the breaker is not closed — the degraded-mode
// flag surfaced by /readyz and the saserve_degraded metric. Nil-safe
// (false).
func (b *Breaker) Tripped() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != BreakerClosed
}

package fault

import (
	"context"
	"time"
)

// RetryPolicy bounds retry-with-exponential-backoff around a transient
// operation. The zero value performs no retries (one attempt, no delay).
type RetryPolicy struct {
	// Attempts is the total number of attempts (first try included);
	// <= 1 means no retries.
	Attempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry. <= 0 with Attempts > 1 means 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; <= 0 means 1s.
	MaxDelay time.Duration
}

// DefaultStoreRetry is the policy the service layers apply around
// persistent-store operations: three attempts, 10ms backoff doubling to
// at most 250ms — enough to ride out transient I/O errors without
// stalling a worker behind a genuinely dead disk.
var DefaultStoreRetry = RetryPolicy{Attempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 250 * time.Millisecond}

func (p RetryPolicy) attempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

func (p RetryPolicy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return 10 * time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) cap() time.Duration {
	if p.MaxDelay <= 0 {
		return time.Second
	}
	return p.MaxDelay
}

// Do runs op up to p.Attempts times, sleeping the exponential backoff
// between attempts (context-aware: a canceled ctx aborts the wait and
// returns ctx.Err wrapped over the last failure). retryable filters which
// errors are worth retrying; nil means all. It returns the number of
// retries performed (0 when the first attempt settled it) and the final
// error.
func (p RetryPolicy) Do(ctx context.Context, retryable func(error) bool, op func() error) (int, error) {
	delay := p.base()
	maxDelay := p.cap()
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || attempt+1 >= p.attempts() || (retryable != nil && !retryable(err)) {
			return attempt, err
		}
		if serr := SleepContext(ctx, delay); serr != nil {
			return attempt, serr
		}
		delay *= 2
		if delay > maxDelay {
			delay = maxDelay
		}
	}
}

// SleepContext sleeps for d or until ctx is done, returning ctx.Err in
// the latter case. Injected-latency hooks and retry backoffs both use it
// so cancellation always propagates promptly through stalls.
func SleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Sleep performs the fault's injected latency (context-aware). Non-latency
// faults sleep nothing. Nil-safe.
func (f *Fault) Sleep(ctx context.Context) error {
	if f == nil || f.Kind != KindLatency {
		return nil
	}
	return SleepContext(ctx, f.Latency)
}

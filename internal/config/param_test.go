package config

import (
	"strings"
	"testing"
)

// paramTestSystem is a two-partition system exercising every target kind.
func paramTestSystem() *System {
	return &System{
		Name:      "param-test",
		CoreTypes: []string{"cpu"},
		Cores:     []Core{{Name: "c1", Type: 0, Module: 0}},
		Partitions: []Partition{
			{
				Name: "P1", Policy: FPPS, Core: 0,
				Tasks: []Task{
					{Name: "a", Priority: 2, WCET: []int64{2}, Period: 10, Deadline: 10},
					{Name: "b", Priority: 1, WCET: []int64{3}, Period: 20, Deadline: 20},
				},
				Windows: []Window{{Start: 0, End: 10}},
			},
			{
				Name: "P2", Policy: RR, Core: 0, Quantum: 2,
				Tasks: []Task{
					{Name: "a", Priority: 1, WCET: []int64{1}, Period: 20, Deadline: 20},
				},
				Windows: []Window{{Start: 10, End: 20}},
			},
		},
	}
}

func TestParseParamTarget(t *testing.T) {
	sys := paramTestSystem()
	good := []string{
		"wcet:P1.a", "wcet:P2.a", "period:P1.b", "deadline:P1.a",
		"offset:P2", "window:P1.0", "quantum:P2", "wcet_pct",
	}
	for _, s := range good {
		pt, err := ParseParamTarget(s)
		if err != nil {
			t.Fatalf("ParseParamTarget(%q): %v", s, err)
		}
		if pt.String() != s {
			t.Errorf("String() = %q, want %q", pt.String(), s)
		}
		if err := pt.Check(sys); err != nil {
			t.Errorf("Check(%q): %v", s, err)
		}
	}
	badSyntax := []string{
		"", "wcet", "wcet:", "wcet:P1", "wcet_pct:5", "offset:P1.a",
		"window:P1.x", "window:P1.-1", "bogus:P1.a", "period:.a", "period:P1.",
	}
	for _, s := range badSyntax {
		if _, err := ParseParamTarget(s); err == nil {
			t.Errorf("ParseParamTarget(%q) succeeded, want error", s)
		}
	}
	badRefs := []string{
		"wcet:P9.a", "wcet:P1.z", "window:P1.3", "quantum:P1", // P1 is not RR
	}
	for _, s := range badRefs {
		pt, err := ParseParamTarget(s)
		if err != nil {
			t.Fatalf("ParseParamTarget(%q): %v", s, err)
		}
		if err := pt.Check(sys); err == nil {
			t.Errorf("Check(%q) succeeded, want error", s)
		}
	}
}

func TestParamTargetApply(t *testing.T) {
	base := paramTestSystem()
	apply := func(t *testing.T, spec string, v float64) *System {
		t.Helper()
		pt, err := ParseParamTarget(spec)
		if err != nil {
			t.Fatal(err)
		}
		sys := base.Clone()
		if err := pt.Apply(sys, v); err != nil {
			t.Fatal(err)
		}
		return sys
	}

	if sys := apply(t, "wcet:P1.a", 7); sys.Partitions[0].Tasks[0].WCET[0] != 7 {
		t.Errorf("wcet target: got %d, want 7", sys.Partitions[0].Tasks[0].WCET[0])
	}
	if sys := apply(t, "period:P1.b", 40); sys.Partitions[0].Tasks[1].Period != 40 {
		t.Errorf("period target: got %d, want 40", sys.Partitions[0].Tasks[1].Period)
	}
	if sys := apply(t, "deadline:P1.a", 8); sys.Partitions[0].Tasks[0].Deadline != 8 {
		t.Errorf("deadline target: got %d, want 8", sys.Partitions[0].Tasks[0].Deadline)
	}
	if sys := apply(t, "offset:P2", 3); sys.Partitions[1].Windows[0] != (Window{Start: 13, End: 23}) {
		t.Errorf("offset target: got %+v", sys.Partitions[1].Windows[0])
	}
	if sys := apply(t, "window:P1.0", 5); sys.Partitions[0].Windows[0] != (Window{Start: 0, End: 5}) {
		t.Errorf("window target: got %+v", sys.Partitions[0].Windows[0])
	}
	if sys := apply(t, "quantum:P2", 4); sys.Partitions[1].Quantum != 4 {
		t.Errorf("quantum target: got %d, want 4", sys.Partitions[1].Quantum)
	}
	// wcet_pct matches analysis.ScaleWCET semantics: c*pct/100, clamped to 1.
	sys := apply(t, "wcet_pct", 150)
	if got := sys.Partitions[0].Tasks[0].WCET[0]; got != 3 { // 2*150/100
		t.Errorf("wcet_pct 150: task a WCET = %d, want 3", got)
	}
	if got := sys.Partitions[1].Tasks[0].WCET[0]; got != 1 { // 1*150/100 = 1
		t.Errorf("wcet_pct 150: P2.a WCET = %d, want 1", got)
	}
	sys = apply(t, "wcet_pct", 10)
	if got := sys.Partitions[0].Tasks[0].WCET[0]; got != 1 { // clamp to 1
		t.Errorf("wcet_pct 10: task a WCET = %d, want 1 (clamped)", got)
	}

	// Below-minimum values are rejected; offset accepts 0.
	pt, _ := ParseParamTarget("wcet:P1.a")
	if err := pt.Apply(base.Clone(), 0); err == nil {
		t.Error("wcet value 0 accepted, want error")
	}
	pt, _ = ParseParamTarget("offset:P2")
	if err := pt.Apply(base.Clone(), 0); err != nil {
		t.Errorf("offset 0: %v", err)
	}
	if err := pt.Apply(base.Clone(), -1); err == nil {
		t.Error("offset -1 accepted, want error")
	}

	// Rounding: 6.6 rounds to 7.
	if sys := apply(t, "wcet:P1.a", 6.6); sys.Partitions[0].Tasks[0].WCET[0] != 7 {
		t.Errorf("rounding: got %d, want 7", sys.Partitions[0].Tasks[0].WCET[0])
	}
}

func TestCloneIsolation(t *testing.T) {
	base := paramTestSystem()
	base.Messages = []Message{{Name: "m", SrcPart: 0, SrcTask: 0, DstPart: 1, DstTask: 0, MemDelay: 1, NetDelay: 2}}
	base.Net = &Topology{Ports: []Port{{Name: "p0"}}, Routes: [][]int{{0}}}
	base.Messages[0].TxTime = 1

	fpBefore := base.Fingerprint()
	cl := base.Clone()
	if cl.Fingerprint() != fpBefore {
		t.Fatal("clone changed the fingerprint")
	}
	cl.Partitions[0].Tasks[0].WCET[0] = 99
	cl.Partitions[0].Windows[0].End = 99
	cl.Partitions[1].Quantum = 99
	cl.Messages[0].MemDelay = 99
	cl.Net.Routes[0][0] = 0
	cl.Net.Ports[0].Name = "renamed"
	cl.CoreTypes[0] = "gpu"
	cl.Cores[0].Name = "c9"
	if base.Fingerprint() != fpBefore {
		t.Fatal("mutating the clone changed the original")
	}
	if base.Partitions[0].Tasks[0].WCET[0] != 2 || base.Partitions[0].Windows[0].End != 10 {
		t.Fatal("clone shares backing arrays with the original")
	}
}

func TestParamTargetErrorsMentionSpelling(t *testing.T) {
	pt, err := ParseParamTarget("wcet:P9.a")
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.Check(paramTestSystem()); err == nil || !strings.Contains(err.Error(), "wcet:P9.a") {
		t.Errorf("Check error %v does not mention the target spelling", err)
	}
}

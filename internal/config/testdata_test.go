package config

import (
	"os"
	"path/filepath"
	"testing"
)

// TestReferenceConfigs loads every XML file under testdata/ — the reference
// configurations shipped with the repository must stay parseable and valid.
func TestReferenceConfigs(t *testing.T) {
	files, err := filepath.Glob("testdata/*.xml")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no reference configurations found")
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := ReadXML(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if sys.Hyperperiod() <= 0 || sys.TaskCount() == 0 {
			t.Errorf("%s: degenerate system %+v", path, sys)
		}
	}
}

package config

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParamTarget identifies one scalar configuration field promoted to a
// symbolic parameter — the WCET_i / per_i / Off_i parameters of the
// IMITATOR models (SNIPPETS.md) mapped onto this package's configuration
// tuple. A target is a spelled binding, resolved by name against a base
// system:
//
//	wcet:<partition>.<task>      every WCET entry of the task (all core types)
//	period:<partition>.<task>    the task's period
//	deadline:<partition>.<task>  the task's relative deadline
//	offset:<partition>           shift of every window of the partition
//	window:<partition>.<index>   width of the partition's index-th window
//	quantum:<partition>          the partition's round-robin quantum
//	wcet_pct                     global WCET scale in percent (ScaleWCET semantics)
//
// The paper's model has no per-task release offset (releases are anchored
// at window-schedule time zero), so the .imi models' Off_i maps to the
// window offset of the task's partition — the same phasing knob at
// partition granularity.
//
// Targets are pure spellings until Check resolves them against a system;
// Apply then mutates a (caller-cloned) system at an integer-rounded value.
// Both synth spaces and campaign "target:" axes materialize points through
// this one implementation, which is what makes their classifications
// comparable point for point.
type ParamTarget struct {
	raw  string
	kind string
	part string // partition name; "" for wcet_pct
	task string // task name (wcet, period, deadline)
	win  int    // window index (window)
}

// Target kinds.
const (
	TargetWCET     = "wcet"
	TargetPeriod   = "period"
	TargetDeadline = "deadline"
	TargetOffset   = "offset"
	TargetWindow   = "window"
	TargetQuantum  = "quantum"
	TargetWCETPct  = "wcet_pct"
)

// ParseParamTarget parses a target spelling. Only syntax is checked here;
// Check resolves the named entities against a concrete system.
func ParseParamTarget(s string) (*ParamTarget, error) {
	t := &ParamTarget{raw: s}
	kind, rest, hasRest := strings.Cut(s, ":")
	t.kind = kind
	switch kind {
	case TargetWCETPct:
		if hasRest {
			return nil, fmt.Errorf("config: target %q takes no operand", s)
		}
		return t, nil
	case TargetOffset, TargetQuantum:
		if !hasRest || rest == "" {
			return nil, fmt.Errorf("config: target %q needs a partition name (%s:<partition>)", s, kind)
		}
		if strings.Contains(rest, ".") {
			return nil, fmt.Errorf("config: target %q names a partition, not a task (%s:<partition>)", s, kind)
		}
		t.part = rest
		return t, nil
	case TargetWCET, TargetPeriod, TargetDeadline:
		part, task, ok := strings.Cut(rest, ".")
		if !hasRest || !ok || part == "" || task == "" {
			return nil, fmt.Errorf("config: target %q needs a task reference (%s:<partition>.<task>)", s, kind)
		}
		t.part, t.task = part, task
		return t, nil
	case TargetWindow:
		part, idx, ok := strings.Cut(rest, ".")
		if !hasRest || !ok || part == "" || idx == "" {
			return nil, fmt.Errorf("config: target %q needs a window reference (window:<partition>.<index>)", s)
		}
		n, err := strconv.Atoi(idx)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("config: target %q has an invalid window index %q", s, idx)
		}
		t.part, t.win = part, n
		return t, nil
	case "":
		return nil, fmt.Errorf("config: empty parameter target")
	default:
		return nil, fmt.Errorf("config: unknown parameter target kind %q in %q", kind, s)
	}
}

// String returns the original spelling.
func (t *ParamTarget) String() string { return t.raw }

// Kind returns the target kind (Target* constants).
func (t *ParamTarget) Kind() string { return t.kind }

// MinValue returns the smallest integer value Apply accepts for this
// target kind: 0 for offsets (no shift), 1 for everything else (a zero
// WCET, period, deadline, window width, quantum or scale is meaningless).
func (t *ParamTarget) MinValue() float64 {
	if t.kind == TargetOffset {
		return 0
	}
	return 1
}

// Check resolves the target's named entities against sys, reporting
// dangling references. Kind-specific structural requirements (an RR
// policy for quantum, an in-range window index) are checked too.
func (t *ParamTarget) Check(sys *System) error {
	if t.kind == TargetWCETPct {
		return nil
	}
	pi := -1
	for i := range sys.Partitions {
		if sys.Partitions[i].Name == t.part {
			pi = i
			break
		}
	}
	if pi < 0 {
		return fmt.Errorf("config: target %q: no partition named %q", t.raw, t.part)
	}
	p := &sys.Partitions[pi]
	switch t.kind {
	case TargetWCET, TargetPeriod, TargetDeadline:
		for i := range p.Tasks {
			if p.Tasks[i].Name == t.task {
				return nil
			}
		}
		return fmt.Errorf("config: target %q: partition %q has no task named %q", t.raw, t.part, t.task)
	case TargetWindow:
		if t.win >= len(p.Windows) {
			return fmt.Errorf("config: target %q: partition %q has %d windows", t.raw, t.part, len(p.Windows))
		}
	case TargetQuantum:
		if p.Policy != RR {
			return fmt.Errorf("config: target %q: partition %q is not round-robin", t.raw, t.part)
		}
	}
	return nil
}

// Apply sets the targeted field of sys to round(v), mutating sys in
// place — clone the base system first (System.Clone). It rejects values
// below MinValue; structural validity of the mutated system (deadline ≤
// period, windows within [0, L], …) is the caller's Validate call, run
// once after all targets of a point are applied.
func (t *ParamTarget) Apply(sys *System, v float64) error {
	n := int64(math.Round(v))
	if float64(n) < t.MinValue() {
		return fmt.Errorf("config: target %q: value %g below minimum %g", t.raw, v, t.MinValue())
	}
	if t.kind == TargetWCETPct {
		for i := range sys.Partitions {
			for j := range sys.Partitions[i].Tasks {
				w := sys.Partitions[i].Tasks[j].WCET
				for k, c := range w {
					scaled := c * n / 100
					if scaled < 1 {
						scaled = 1
					}
					w[k] = scaled
				}
			}
		}
		return nil
	}
	pi := -1
	for i := range sys.Partitions {
		if sys.Partitions[i].Name == t.part {
			pi = i
			break
		}
	}
	if pi < 0 {
		return fmt.Errorf("config: target %q: no partition named %q", t.raw, t.part)
	}
	p := &sys.Partitions[pi]
	switch t.kind {
	case TargetOffset:
		for i := range p.Windows {
			p.Windows[i].Start += n
			p.Windows[i].End += n
		}
		return nil
	case TargetWindow:
		if t.win >= len(p.Windows) {
			return fmt.Errorf("config: target %q: partition %q has %d windows", t.raw, t.part, len(p.Windows))
		}
		p.Windows[t.win].End = p.Windows[t.win].Start + n
		return nil
	case TargetQuantum:
		p.Quantum = n
		return nil
	}
	for i := range p.Tasks {
		tk := &p.Tasks[i]
		if tk.Name != t.task {
			continue
		}
		switch t.kind {
		case TargetWCET:
			for k := range tk.WCET {
				tk.WCET[k] = n
			}
		case TargetPeriod:
			tk.Period = n
		case TargetDeadline:
			tk.Deadline = n
		}
		return nil
	}
	return fmt.Errorf("config: target %q: partition %q has no task named %q", t.raw, t.part, t.task)
}

// Clone returns a deep copy of the system: mutating any slice-backed
// field of the copy (tasks, WCET vectors, windows, messages, topology
// routes) leaves the original untouched. Parameter application
// (ParamTarget.Apply) always works on a clone so base systems shared by
// campaigns and synthesis spaces stay pristine.
func (s *System) Clone() *System {
	out := *s
	out.CoreTypes = append([]string(nil), s.CoreTypes...)
	out.Cores = append([]Core(nil), s.Cores...)
	out.Partitions = make([]Partition, len(s.Partitions))
	for i := range s.Partitions {
		p := s.Partitions[i]
		tasks := make([]Task, len(p.Tasks))
		for j, t := range p.Tasks {
			t.WCET = append([]int64(nil), t.WCET...)
			tasks[j] = t
		}
		p.Tasks = tasks
		p.Windows = append([]Window(nil), p.Windows...)
		out.Partitions[i] = p
	}
	out.Messages = append([]Message(nil), s.Messages...)
	if s.Net != nil {
		net := &Topology{Ports: append([]Port(nil), s.Net.Ports...)}
		net.Routes = make([][]int, len(s.Net.Routes))
		for i, r := range s.Net.Routes {
			net.Routes[i] = append([]int(nil), r...)
		}
		out.Net = net
	}
	return &out
}

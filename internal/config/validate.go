package config

import (
	"fmt"
	"sort"
)

// ValidationError describes a configuration defect found by Validate.
type ValidationError struct {
	Where string
	Msg   string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("config: %s: %s", e.Where, e.Msg)
}

func verr(where, format string, args ...any) error {
	return &ValidationError{Where: where, Msg: fmt.Sprintf(format, args...)}
}

// MessageError is the typed rejection of a malformed Message: an
// out-of-range sender/receiver reference, a self-loop, or any other
// defect of one data-flow edge. Callers that construct Messages
// programmatically (generators, the compose planner, API clients) can
// errors.As for it and read the offending edge index back. It unwraps to
// a *ValidationError, so the diag exit-code classification (ExitConfig)
// and every existing errors.As(&ValidationError) site keep working.
type MessageError struct {
	Index  int    // index into System.Messages
	Name   string // message name, "" when unnamed
	Reason string
}

func (e *MessageError) Error() string {
	where := fmt.Sprintf("message %d", e.Index)
	if e.Name != "" {
		where = "message " + e.Name
	}
	return fmt.Sprintf("config: %s: %s", where, e.Reason)
}

// Unwrap exposes the error as a *ValidationError for classification.
func (e *MessageError) Unwrap() error {
	where := fmt.Sprintf("message %d", e.Index)
	if e.Name != "" {
		where = "message " + e.Name
	}
	return &ValidationError{Where: where, Msg: e.Reason}
}

func merr(index int, name, format string, args ...any) error {
	return &MessageError{Index: index, Name: name, Reason: fmt.Sprintf(format, args...)}
}

// Validate checks the configuration against the formal model's constraints:
// well-formed cores and core types, tasks with positive periods, deadlines
// within periods, per-core-type WCET vectors, valid bindings, windows inside
// [0, L] that do not overlap on a shared core, messages connecting distinct
// tasks of equal period, and an acyclic data-flow graph.
func (s *System) Validate() error {
	if len(s.CoreTypes) == 0 {
		return verr("system", "no core types")
	}
	if len(s.Cores) == 0 {
		return verr("system", "no cores")
	}
	if len(s.Partitions) == 0 {
		return verr("system", "no partitions")
	}
	seen := make(map[string]bool)
	for i, ct := range s.CoreTypes {
		if ct == "" {
			return verr("system", "core type %d has empty name", i)
		}
		if seen["t:"+ct] {
			return verr("system", "duplicate core type %q", ct)
		}
		seen["t:"+ct] = true
	}
	for i, c := range s.Cores {
		if c.Name == "" {
			return verr("system", "core %d has empty name", i)
		}
		if seen["c:"+c.Name] {
			return verr("system", "duplicate core %q", c.Name)
		}
		seen["c:"+c.Name] = true
		if c.Type < 0 || c.Type >= len(s.CoreTypes) {
			return verr("core "+c.Name, "core type %d out of range", c.Type)
		}
	}
	for i := range s.Partitions {
		p := &s.Partitions[i]
		if p.Name == "" {
			return verr("system", "partition %d has empty name", i)
		}
		if seen["p:"+p.Name] {
			return verr("system", "duplicate partition %q", p.Name)
		}
		seen["p:"+p.Name] = true
		if p.Core < 0 || p.Core >= len(s.Cores) {
			return verr("partition "+p.Name, "bound core %d out of range", p.Core)
		}
		if int(p.Policy) >= len(policyNames) {
			return verr("partition "+p.Name, "unknown policy %d", p.Policy)
		}
		if p.Policy == RR && p.Quantum <= 0 {
			return verr("partition "+p.Name, "round-robin requires a positive quantum, got %d", p.Quantum)
		}
		if len(p.Tasks) == 0 {
			return verr("partition "+p.Name, "no tasks")
		}
		tseen := make(map[string]bool)
		for j := range p.Tasks {
			t := &p.Tasks[j]
			where := fmt.Sprintf("task %s.%s", p.Name, t.Name)
			if t.Name == "" {
				return verr("partition "+p.Name, "task %d has empty name", j)
			}
			if tseen[t.Name] {
				return verr("partition "+p.Name, "duplicate task %q", t.Name)
			}
			tseen[t.Name] = true
			if t.Period <= 0 {
				return verr(where, "non-positive period %d", t.Period)
			}
			if t.Deadline <= 0 || t.Deadline > t.Period {
				return verr(where, "deadline %d outside (0, period %d]", t.Deadline, t.Period)
			}
			if len(t.WCET) != len(s.CoreTypes) {
				return verr(where, "WCET vector has %d entries, want one per core type (%d)", len(t.WCET), len(s.CoreTypes))
			}
			for k, c := range t.WCET {
				if c <= 0 {
					return verr(where, "non-positive WCET %d for core type %q", c, s.CoreTypes[k])
				}
			}
			if t.Priority < 0 {
				return verr(where, "negative priority %d", t.Priority)
			}
		}
	}

	// Hyperperiod: the LCM of all periods must be representable. On
	// overflow, name the concrete pair of periods responsible (or, when
	// only the combination of several periods overflows, the accumulated
	// LCM) so the user knows which tasks to adjust.
	type periodOf struct {
		period int64
		task   string
	}
	var periods []periodOf
	l := int64(1)
	for i := range s.Partitions {
		p := &s.Partitions[i]
		for j := range p.Tasks {
			t := &p.Tasks[j]
			name := p.Name + "." + t.Name
			nl, err := LCMChecked(l, t.Period)
			if err != nil {
				for _, prev := range periods {
					if _, perr := LCMChecked(prev.period, t.Period); perr != nil {
						return verr("task "+name,
							"hyperperiod overflows int64: lcm of period %d (task %s) and period %d (task %s) is not representable",
							prev.period, prev.task, t.Period, name)
					}
				}
				return verr("task "+name,
					"hyperperiod overflows int64: lcm of accumulated hyperperiod %d and period %d is not representable", l, t.Period)
			}
			l = nl
			periods = append(periods, periodOf{t.Period, name})
		}
	}

	// Windows: each inside [0, L], start < end, sorted per partition, and
	// non-overlapping across partitions sharing a core.
	type cw struct {
		Window
		part string
	}
	perCore := make(map[int][]cw)
	for i := range s.Partitions {
		p := &s.Partitions[i]
		if len(p.Windows) == 0 {
			return verr("partition "+p.Name, "no execution windows")
		}
		prevEnd := int64(-1)
		for _, w := range p.Windows {
			if w.Start < 0 || w.End > l || w.Start >= w.End {
				return verr("partition "+p.Name, "window [%d,%d) outside [0,%d) or empty", w.Start, w.End, l)
			}
			if w.Start < prevEnd {
				return verr("partition "+p.Name, "windows not sorted or overlapping at [%d,%d)", w.Start, w.End)
			}
			prevEnd = w.End
			perCore[p.Core] = append(perCore[p.Core], cw{w, p.Name})
		}
	}
	for core, ws := range perCore {
		sort.Slice(ws, func(a, b int) bool { return ws[a].Start < ws[b].Start })
		for i := 1; i < len(ws); i++ {
			if ws[i].Start < ws[i-1].End {
				return verr("core "+s.Cores[core].Name,
					"windows of %q and %q overlap at [%d,%d)", ws[i-1].part, ws[i].part, ws[i].Start, ws[i-1].End)
			}
		}
	}

	// Messages. Reference and self-loop defects raise the typed
	// *MessageError (ValidateMessages), so construction-time callers can
	// catch them before anything indexes Partitions with a bad reference.
	if err := s.ValidateMessages(); err != nil {
		return err
	}
	mseen := make(map[string]bool)
	for i := range s.Messages {
		m := &s.Messages[i]
		where := "message " + m.Name
		if m.Name == "" {
			return verr("system", "message %d has empty name", i)
		}
		if mseen[m.Name] {
			return verr("system", "duplicate message %q", m.Name)
		}
		mseen[m.Name] = true
		sp := s.Partitions[m.SrcPart].Tasks[m.SrcTask].Period
		dp := s.Partitions[m.DstPart].Tasks[m.DstTask].Period
		if sp != dp {
			return verr(where, "sender period %d differs from receiver period %d (data dependencies require equal periods)", sp, dp)
		}
		if m.MemDelay < 0 || m.NetDelay < 0 {
			return verr(where, "negative transfer delay")
		}
	}

	if cyc := s.dependencyCycle(); cyc != "" {
		return verr("system", "data-flow graph has a cycle: %s", cyc)
	}
	return s.validateNetwork()
}

// ValidateMessages checks only the structural sanity of the data-flow
// edges: every sender and receiver reference must index an existing task
// and no message may connect a task to itself. Every defect is reported
// as a *MessageError naming the edge. Validate calls this before any
// other message check; exporters and planners that walk Messages on
// partially-built systems (WriteXML, compose) call it directly so a
// malformed edge surfaces as a typed error instead of an index panic.
func (s *System) ValidateMessages() error {
	for i := range s.Messages {
		m := &s.Messages[i]
		if !s.validRef(TaskRef{m.SrcPart, m.SrcTask}) {
			return merr(i, m.Name, "sender reference (%d,%d) out of range", m.SrcPart, m.SrcTask)
		}
		if !s.validRef(TaskRef{m.DstPart, m.DstTask}) {
			return merr(i, m.Name, "receiver reference (%d,%d) out of range", m.DstPart, m.DstTask)
		}
		if m.SrcPart == m.DstPart && m.SrcTask == m.DstTask {
			return merr(i, m.Name, "sender and receiver are the same task (self-loop)")
		}
	}
	return nil
}

func (s *System) validRef(r TaskRef) bool {
	return r.Part >= 0 && r.Part < len(s.Partitions) &&
		r.Task >= 0 && r.Task < len(s.Partitions[r.Part].Tasks)
}

// dependencyCycle returns a description of a cycle in the data-flow graph,
// or "" when acyclic. A dependency cycle can never be satisfied: every
// receiver waits for its sender, so all jobs on the cycle starve.
func (s *System) dependencyCycle() string {
	adj := make(map[TaskRef][]TaskRef)
	for i := range s.Messages {
		m := &s.Messages[i]
		src := TaskRef{m.SrcPart, m.SrcTask}
		adj[src] = append(adj[src], TaskRef{m.DstPart, m.DstTask})
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[TaskRef]int)
	var cycleAt TaskRef
	var found bool
	var visit func(r TaskRef) bool
	visit = func(r TaskRef) bool {
		color[r] = gray
		for _, next := range adj[r] {
			switch color[next] {
			case gray:
				cycleAt, found = next, true
				return true
			case white:
				if visit(next) {
					return true
				}
			}
		}
		color[r] = black
		return false
	}
	// Deterministic iteration order for reproducible messages.
	var roots []TaskRef
	for r := range adj {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(a, b int) bool {
		if roots[a].Part != roots[b].Part {
			return roots[a].Part < roots[b].Part
		}
		return roots[a].Task < roots[b].Task
	})
	for _, r := range roots {
		if color[r] == white && visit(r) {
			break
		}
	}
	if !found {
		return ""
	}
	return "through " + s.TaskName(cycleAt)
}

// IncomingMessages returns the indices of messages whose receiver is r.
func (s *System) IncomingMessages(r TaskRef) []int {
	var out []int
	for i := range s.Messages {
		if s.Messages[i].DstPart == r.Part && s.Messages[i].DstTask == r.Task {
			out = append(out, i)
		}
	}
	return out
}

// OutgoingMessages returns the indices of messages whose sender is r.
func (s *System) OutgoingMessages(r TaskRef) []int {
	var out []int
	for i := range s.Messages {
		if s.Messages[i].SrcPart == r.Part && s.Messages[i].SrcTask == r.Task {
			out = append(out, i)
		}
	}
	return out
}

package config

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestMessageErrorTyped asserts malformed data-flow edges are rejected
// with the typed *MessageError (and still classify as *ValidationError
// through Unwrap, so diag keeps mapping them to ExitConfig).
func TestMessageErrorTyped(t *testing.T) {
	cases := []struct {
		name string
		msg  Message
		want string
	}{
		{"src part out of range", Message{Name: "bad", SrcPart: 9, SrcTask: 0, DstPart: 1, DstTask: 0}, "sender reference"},
		{"src part negative", Message{Name: "bad", SrcPart: -1, SrcTask: 0, DstPart: 1, DstTask: 0}, "sender reference"},
		{"src task out of range", Message{Name: "bad", SrcPart: 0, SrcTask: 7, DstPart: 1, DstTask: 0}, "sender reference"},
		{"dst part out of range", Message{Name: "bad", SrcPart: 0, SrcTask: 0, DstPart: 4, DstTask: 0}, "receiver reference"},
		{"dst task negative", Message{Name: "bad", SrcPart: 0, SrcTask: 0, DstPart: 1, DstTask: -2}, "receiver reference"},
		{"self loop", Message{Name: "bad", SrcPart: 0, SrcTask: 1, DstPart: 0, DstTask: 1}, "self-loop"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := demo()
			s.Messages = append(s.Messages, tc.msg)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted a malformed message")
			}
			var me *MessageError
			if !errors.As(err, &me) {
				t.Fatalf("error %v (%T) is not a *MessageError", err, err)
			}
			if me.Index != 1 || me.Name != "bad" {
				t.Errorf("MessageError names edge (%d, %q), want (1, \"bad\")", me.Index, me.Name)
			}
			if !strings.Contains(me.Reason, tc.want) {
				t.Errorf("reason %q does not mention %q", me.Reason, tc.want)
			}
			var ve *ValidationError
			if !errors.As(err, &ve) {
				t.Errorf("MessageError does not unwrap to *ValidationError")
			}
		})
	}
}

// TestWriteXMLRejectsBadMessage asserts the exporter returns the typed
// error instead of panicking on a dangling message reference.
func TestWriteXMLRejectsBadMessage(t *testing.T) {
	s := demo()
	s.Messages[0].DstPart = 42
	var buf bytes.Buffer
	err := s.WriteXML(&buf)
	if err == nil {
		t.Fatal("WriteXML accepted a dangling message reference")
	}
	var me *MessageError
	if !errors.As(err, &me) {
		t.Fatalf("error %v (%T) is not a *MessageError", err, err)
	}
}

// TestValidateMessagesOnPartialSystem asserts the structural edge check
// runs standalone on systems that would fail full validation (compose
// builds sub-systems incrementally and checks edges early).
func TestValidateMessagesOnPartialSystem(t *testing.T) {
	s := &System{ // no cores, no windows: full Validate would reject it
		Partitions: []Partition{{Name: "P", Tasks: []Task{{Name: "T"}}}},
		Messages:   []Message{{Name: "m", SrcPart: 0, SrcTask: 0, DstPart: 0, DstTask: 0}},
	}
	var me *MessageError
	if err := s.ValidateMessages(); !errors.As(err, &me) {
		t.Fatalf("ValidateMessages = %v, want *MessageError", err)
	}
	s.Messages = nil
	if err := s.ValidateMessages(); err != nil {
		t.Fatalf("ValidateMessages on edge-free system = %v", err)
	}
}

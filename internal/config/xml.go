package config

import (
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The XML schema mirrors the configuration files the paper's scheduling tool
// exchanges with the parametric model:
//
//	<system name="demo">
//	  <coreType name="fast"/>
//	  <module id="1">
//	    <core name="c1" type="fast"/>
//	  </module>
//	  <partition name="P1" core="c1" policy="FPPS">
//	    <task name="T1" priority="3" period="100" deadline="80" wcet="10 20"/>
//	    <window start="0" end="25"/>
//	  </partition>
//	  <message name="m1" from="P1.T1" to="P2.T3" memDelay="2" netDelay="5"/>
//	</system>
type xmlSystem struct {
	XMLName    xml.Name       `xml:"system"`
	Name       string         `xml:"name,attr"`
	CoreTypes  []xmlCoreType  `xml:"coreType"`
	Modules    []xmlModule    `xml:"module"`
	Partitions []xmlPartition `xml:"partition"`
	Messages   []xmlMessage   `xml:"message"`
	Network    *xmlNetwork    `xml:"network"`
}

type xmlNetwork struct {
	Ports []xmlPort `xml:"port"`
}

type xmlPort struct {
	Name string `xml:"name,attr"`
}

type xmlCoreType struct {
	Name string `xml:"name,attr"`
}

type xmlModule struct {
	ID    int       `xml:"id,attr"`
	Cores []xmlCore `xml:"core"`
}

type xmlCore struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
}

type xmlPartition struct {
	Name    string      `xml:"name,attr"`
	Core    string      `xml:"core,attr"`
	Policy  string      `xml:"policy,attr"`
	Quantum int64       `xml:"quantum,attr,omitempty"`
	Tasks   []xmlTask   `xml:"task"`
	Windows []xmlWindow `xml:"window"`
}

type xmlTask struct {
	Name     string `xml:"name,attr"`
	Priority int    `xml:"priority,attr"`
	Period   int64  `xml:"period,attr"`
	Deadline int64  `xml:"deadline,attr"`
	WCET     string `xml:"wcet,attr"`
}

type xmlWindow struct {
	Start int64 `xml:"start,attr"`
	End   int64 `xml:"end,attr"`
}

type xmlMessage struct {
	Name     string `xml:"name,attr"`
	From     string `xml:"from,attr"`
	To       string `xml:"to,attr"`
	MemDelay int64  `xml:"memDelay,attr"`
	NetDelay int64  `xml:"netDelay,attr"`
	TxTime   int64  `xml:"txTime,attr,omitempty"`
	Route    string `xml:"route,attr,omitempty"` // space-separated port names
}

// WriteXML serializes the configuration.
func (s *System) WriteXML(w io.Writer) error {
	// Message elements are serialized by task name, so a dangling
	// reference would otherwise panic indexing Partitions below.
	if err := s.ValidateMessages(); err != nil {
		return err
	}
	x := xmlSystem{Name: s.Name}
	for _, ct := range s.CoreTypes {
		x.CoreTypes = append(x.CoreTypes, xmlCoreType{Name: ct})
	}
	mods := make(map[int]*xmlModule)
	var order []int
	for _, c := range s.Cores {
		m, ok := mods[c.Module]
		if !ok {
			m = &xmlModule{ID: c.Module}
			mods[c.Module] = m
			order = append(order, c.Module)
		}
		m.Cores = append(m.Cores, xmlCore{Name: c.Name, Type: s.CoreTypes[c.Type]})
	}
	for _, id := range order {
		x.Modules = append(x.Modules, *mods[id])
	}
	for i := range s.Partitions {
		p := &s.Partitions[i]
		xp := xmlPartition{Name: p.Name, Core: s.Cores[p.Core].Name, Policy: p.Policy.String(), Quantum: p.Quantum}
		for j := range p.Tasks {
			t := &p.Tasks[j]
			var wcet []string
			for _, c := range t.WCET {
				wcet = append(wcet, strconv.FormatInt(c, 10))
			}
			xp.Tasks = append(xp.Tasks, xmlTask{
				Name: t.Name, Priority: t.Priority, Period: t.Period,
				Deadline: t.Deadline, WCET: strings.Join(wcet, " "),
			})
		}
		for _, win := range p.Windows {
			xp.Windows = append(xp.Windows, xmlWindow{Start: win.Start, End: win.End})
		}
		x.Partitions = append(x.Partitions, xp)
	}
	for i := range s.Messages {
		m := &s.Messages[i]
		xm := xmlMessage{
			Name:     m.Name,
			From:     s.TaskName(TaskRef{m.SrcPart, m.SrcTask}),
			To:       s.TaskName(TaskRef{m.DstPart, m.DstTask}),
			MemDelay: m.MemDelay, NetDelay: m.NetDelay, TxTime: m.TxTime,
		}
		if route := s.RouteOf(i); len(route) > 0 {
			var names []string
			for _, p := range route {
				names = append(names, s.Net.Ports[p].Name)
			}
			xm.Route = strings.Join(names, " ")
		}
		x.Messages = append(x.Messages, xm)
	}
	if s.Net != nil {
		xn := &xmlNetwork{}
		for _, p := range s.Net.Ports {
			xn.Ports = append(xn.Ports, xmlPort{Name: p.Name})
		}
		x.Network = xn
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadXML parses and validates a configuration.
func ReadXML(r io.Reader) (*System, error) {
	var x xmlSystem
	if err := xml.NewDecoder(r).Decode(&x); err != nil {
		return nil, fmt.Errorf("config: parsing XML: %w", err)
	}
	s := &System{Name: x.Name}
	typeIdx := make(map[string]int)
	for _, ct := range x.CoreTypes {
		typeIdx[ct.Name] = len(s.CoreTypes)
		s.CoreTypes = append(s.CoreTypes, ct.Name)
	}
	coreIdx := make(map[string]int)
	for _, m := range x.Modules {
		for _, c := range m.Cores {
			ti, ok := typeIdx[c.Type]
			if !ok {
				return nil, fmt.Errorf("config: core %q references unknown core type %q", c.Name, c.Type)
			}
			coreIdx[c.Name] = len(s.Cores)
			s.Cores = append(s.Cores, Core{Name: c.Name, Type: ti, Module: m.ID})
		}
	}
	partIdx := make(map[string]int)
	taskIdx := make(map[string]TaskRef) // "Part.Task" -> ref
	for _, xp := range x.Partitions {
		ci, ok := coreIdx[xp.Core]
		if !ok {
			return nil, fmt.Errorf("config: partition %q references unknown core %q", xp.Name, xp.Core)
		}
		pol, err := ParsePolicy(xp.Policy)
		if err != nil {
			return nil, fmt.Errorf("config: partition %q: %w", xp.Name, err)
		}
		p := Partition{Name: xp.Name, Core: ci, Policy: pol, Quantum: xp.Quantum}
		for _, xt := range xp.Tasks {
			var wcet []int64
			for _, f := range strings.Fields(xt.WCET) {
				v, err := strconv.ParseInt(f, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("config: task %s.%s: bad wcet entry %q", xp.Name, xt.Name, f)
				}
				wcet = append(wcet, v)
			}
			taskIdx[xp.Name+"."+xt.Name] = TaskRef{len(s.Partitions), len(p.Tasks)}
			p.Tasks = append(p.Tasks, Task{
				Name: xt.Name, Priority: xt.Priority, WCET: wcet,
				Period: xt.Period, Deadline: xt.Deadline,
			})
		}
		for _, xw := range xp.Windows {
			p.Windows = append(p.Windows, Window{Start: xw.Start, End: xw.End})
		}
		partIdx[xp.Name] = len(s.Partitions)
		s.Partitions = append(s.Partitions, p)
	}
	portIdx := make(map[string]int)
	if x.Network != nil {
		s.Net = &Topology{}
		for _, p := range x.Network.Ports {
			portIdx[p.Name] = len(s.Net.Ports)
			s.Net.Ports = append(s.Net.Ports, Port{Name: p.Name})
		}
	}
	for _, xm := range x.Messages {
		src, ok := taskIdx[xm.From]
		if !ok {
			return nil, fmt.Errorf("config: message %q: unknown sender %q", xm.Name, xm.From)
		}
		dst, ok := taskIdx[xm.To]
		if !ok {
			return nil, fmt.Errorf("config: message %q: unknown receiver %q", xm.Name, xm.To)
		}
		s.Messages = append(s.Messages, Message{
			Name:    xm.Name,
			SrcPart: src.Part, SrcTask: src.Task,
			DstPart: dst.Part, DstTask: dst.Task,
			MemDelay: xm.MemDelay, NetDelay: xm.NetDelay, TxTime: xm.TxTime,
		})
		if s.Net != nil {
			var route []int
			for _, pn := range strings.Fields(xm.Route) {
				pi, ok := portIdx[pn]
				if !ok {
					return nil, fmt.Errorf("config: message %q: unknown port %q in route", xm.Name, pn)
				}
				route = append(route, pi)
			}
			s.Net.Routes = append(s.Net.Routes, route)
		} else if xm.Route != "" {
			return nil, fmt.Errorf("config: message %q has a route but the system has no network", xm.Name)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

package config

import "fmt"

// Topology describes a switched network explicitly, the extension the
// paper's future-work section plans ("models of switched networks
// components"). When a System carries a Topology, messages with a
// non-empty route are transferred hop by hop through switch output ports —
// serialization points with FIFO queues — instead of taking the fixed
// worst-case delay of the plain virtual-link model. Messages without a
// route keep the fixed-delay behaviour, so both models can coexist.
type Topology struct {
	// Ports are unidirectional serialization points (switch output ports
	// or module egress links).
	Ports []Port
	// Routes[h] lists the port indices message h traverses, in order.
	// An empty route keeps the fixed-delay virtual link for that message.
	Routes [][]int
}

// Port is one serialization point of the network.
type Port struct {
	Name string
}

// validateNetwork checks the topology against the message set.
func (s *System) validateNetwork() error {
	t := s.Net
	if t == nil {
		return nil
	}
	seen := make(map[string]bool)
	for i, p := range t.Ports {
		if p.Name == "" {
			return verr("network", "port %d has empty name", i)
		}
		if seen[p.Name] {
			return verr("network", "duplicate port %q", p.Name)
		}
		seen[p.Name] = true
	}
	if len(t.Routes) != len(s.Messages) {
		return verr("network", "%d routes for %d messages", len(t.Routes), len(s.Messages))
	}
	for h, route := range t.Routes {
		m := &s.Messages[h]
		for _, p := range route {
			if p < 0 || p >= len(t.Ports) {
				return verr("message "+m.Name, "route references unknown port %d", p)
			}
		}
		if len(route) > 0 && m.TxTime <= 0 {
			return verr("message "+m.Name, "routed message needs a positive txTime, got %d", m.TxTime)
		}
		for i := 0; i < len(route); i++ {
			for j := i + 1; j < len(route); j++ {
				if route[i] == route[j] {
					return verr("message "+m.Name, "route visits port %q twice", t.Ports[route[i]].Name)
				}
			}
		}
	}
	return nil
}

// RouteOf returns the port route of message h (nil for fixed-delay links).
func (s *System) RouteOf(h int) []int {
	if s.Net == nil || h >= len(s.Net.Routes) {
		return nil
	}
	return s.Net.Routes[h]
}

// MessagesThroughPort returns, for each hop position, the messages whose
// route passes through port p: a slice of (message, hop index) pairs.
func (s *System) MessagesThroughPort(p int) []PortHop {
	var out []PortHop
	if s.Net == nil {
		return out
	}
	for h, route := range s.Net.Routes {
		for i, port := range route {
			if port == p {
				out = append(out, PortHop{Message: h, Hop: i})
			}
		}
	}
	return out
}

// PortHop identifies one traversal of a port by a message.
type PortHop struct {
	Message int
	Hop     int
}

func (s *System) portName(p int) string {
	if s.Net == nil || p < 0 || p >= len(s.Net.Ports) {
		return fmt.Sprintf("port#%d", p)
	}
	return s.Net.Ports[p].Name
}

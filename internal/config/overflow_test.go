package config

import (
	"errors"
	"strings"
	"testing"
)

func TestLCMChecked(t *testing.T) {
	if v, err := LCMChecked(4, 6); err != nil || v != 12 {
		t.Errorf("LCMChecked(4,6) = %d, %v", v, err)
	}
	if v, err := LCMChecked(0, 5); err != nil || v != 0 {
		t.Errorf("LCMChecked(0,5) = %d, %v", v, err)
	}
	if _, err := LCMChecked(1<<62, 3); err == nil {
		t.Error("LCMChecked(2^62, 3) must overflow")
	}
}

func TestLCMPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LCM on an overflowing pair must panic (programmer error)")
		}
	}()
	LCM(1<<62, 3)
}

// TestValidateHyperperiodOverflow: a period combination whose LCM is not
// representable must be rejected by Validate with an error naming the two
// periods involved — not crash the process later in Hyperperiod.
func TestValidateHyperperiodOverflow(t *testing.T) {
	huge := int64(1) << 62
	s := &System{
		Name:      "overflow",
		CoreTypes: []string{"std"},
		Cores:     []Core{{Name: "c1", Type: 0, Module: 1}},
		Partitions: []Partition{
			{Name: "P1", Core: 0, Policy: FPPS,
				Tasks: []Task{
					{Name: "Big", Priority: 2, WCET: []int64{1}, Period: huge, Deadline: huge},
					{Name: "Odd", Priority: 1, WCET: []int64{1}, Period: 3, Deadline: 3},
				},
				Windows: []Window{{Start: 0, End: 1}}},
		},
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("overflowing hyperperiod must not validate")
	}
	var verr *ValidationError
	if !errors.As(err, &verr) {
		t.Fatalf("err = %T, want *ValidationError", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "hyperperiod overflows") {
		t.Errorf("message = %q, want overflow explanation", msg)
	}
	// Both offending periods and their task names must be identified.
	for _, want := range []string{"4611686018427387904", "P1.Big", "3", "P1.Odd"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message = %q, want it to name %q", msg, want)
		}
	}
}

// Package config defines modular (IMA) system configurations following the
// paper's formalization: a configuration is the tuple ⟨HW, WL, Bind, Sched⟩
// of processing cores, a workload of partitions with tasks and a data-flow
// graph, a binding of partitions to cores, and a periodic window schedule.
//
// All times are integer ticks. The schedule repeats with period L, the least
// common multiple of all task periods (Hyperperiod).
package config

import "fmt"

// Policy is a task scheduling algorithm type (the A_i of a partition).
type Policy uint8

// Scheduling policies implemented by the component model library. RR is an
// extension beyond the paper's three schedulers (its future-work section
// plans "more models of core and task schedulers").
const (
	FPPS  Policy = iota // fixed-priority preemptive
	FPNPS               // fixed-priority non-preemptive
	EDF                 // earliest deadline first (preemptive)
	RR                  // round-robin with a per-partition quantum
)

var policyNames = [...]string{FPPS: "FPPS", FPNPS: "FPNPS", EDF: "EDF", RR: "RR"}

func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// ParsePolicy converts a policy name to its value.
func ParsePolicy(s string) (Policy, error) {
	for i, n := range policyNames {
		if n == s {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("config: unknown scheduling policy %q", s)
}

// Core is one processing core (an element of HW). Type indexes
// System.CoreTypes; Module is the hardware module the core belongs to
// (message transfers within one module go through memory, across modules
// through the network).
type Core struct {
	Name   string
	Type   int
	Module int
}

// Task is a periodic task: every Period ticks a job is released that must
// receive WCET[coretype] ticks of processor time within Deadline ticks of
// its release. Priority orders tasks under fixed-priority policies (larger
// is more urgent).
type Task struct {
	Name     string
	Priority int
	WCET     []int64 // per core type
	Period   int64
	Deadline int64
}

// Window is one execution window ⟨Start, End⟩ of a partition on its core,
// with 0 ≤ Start < End ≤ L.
type Window struct {
	Start, End int64
}

// Partition is an application partition: a set of tasks, a scheduling
// policy, a binding to a core (index into System.Cores) and a window set.
// Quantum is the round-robin time slice, used (and required) only when
// Policy is RR.
type Partition struct {
	Name    string
	Tasks   []Task
	Policy  Policy
	Core    int
	Windows []Window
	Quantum int64
}

// Message is an edge of the data-flow graph G: the k-th job of the receiver
// task cannot start before the k-th job of the sender task has completed
// and the message has been transferred (taking MemDelay ticks within a
// module, NetDelay across modules). Sender and receiver must share a
// period. When the system has a Topology and the message a route, the
// transfer instead traverses switch ports, taking TxTime ticks per hop
// plus queueing.
type Message struct {
	Name     string
	SrcPart  int // index into System.Partitions
	SrcTask  int // index into Partitions[SrcPart].Tasks
	DstPart  int
	DstTask  int
	MemDelay int64
	NetDelay int64
	TxTime   int64 // per-hop frame transmission time for routed messages
}

// System is a complete system configuration. Net is optional: when nil,
// all messages use fixed worst-case transfer delays.
type System struct {
	Name       string
	CoreTypes  []string
	Cores      []Core
	Partitions []Partition
	Messages   []Message
	Net        *Topology
}

// TaskRef identifies a task by partition and task index.
type TaskRef struct {
	Part, Task int
}

// String renders the reference using configured names.
func (s *System) TaskName(r TaskRef) string {
	return s.Partitions[r.Part].Name + "." + s.Partitions[r.Part].Tasks[r.Task].Name
}

// Hyperperiod returns L, the least common multiple of all task periods.
func (s *System) Hyperperiod() int64 {
	l := int64(1)
	for i := range s.Partitions {
		for j := range s.Partitions[i].Tasks {
			l = LCM(l, s.Partitions[i].Tasks[j].Period)
		}
	}
	return l
}

// TaskCount returns the total number of tasks.
func (s *System) TaskCount() int {
	n := 0
	for i := range s.Partitions {
		n += len(s.Partitions[i].Tasks)
	}
	return n
}

// JobCount returns the total number of jobs over one hyperperiod,
// Σ L/P_ij in the paper's terms.
func (s *System) JobCount() int64 {
	l := s.Hyperperiod()
	var n int64
	for i := range s.Partitions {
		for j := range s.Partitions[i].Tasks {
			n += l / s.Partitions[i].Tasks[j].Period
		}
	}
	return n
}

// WCETOn returns the task's worst-case execution time on the core its
// partition is bound to.
func (s *System) WCETOn(r TaskRef) int64 {
	p := &s.Partitions[r.Part]
	return p.Tasks[r.Task].WCET[s.Cores[p.Core].Type]
}

// Delay returns the worst-case transfer delay of message m: the memory
// delay when sender and receiver partitions share a module, the network
// delay otherwise.
func (s *System) Delay(m *Message) int64 {
	src := s.Cores[s.Partitions[m.SrcPart].Core].Module
	dst := s.Cores[s.Partitions[m.DstPart].Core].Module
	if src == dst {
		return m.MemDelay
	}
	return m.NetDelay
}

// Utilization returns the processor utilization of core c: the sum over
// tasks bound to it of WCET/Period.
func (s *System) Utilization(c int) float64 {
	u := 0.0
	for i := range s.Partitions {
		p := &s.Partitions[i]
		if p.Core != c {
			continue
		}
		for j := range p.Tasks {
			u += float64(p.Tasks[j].WCET[s.Cores[c].Type]) / float64(p.Tasks[j].Period)
		}
	}
	return u
}

// GCD returns the greatest common divisor of a and b (non-negative inputs).
func GCD(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCMChecked returns the least common multiple of a and b, or an error when
// the result overflows int64. Validate uses it to reject configurations
// whose periods produce an unrepresentable hyperperiod before any analysis
// runs on them.
func LCMChecked(a, b int64) (int64, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	g := GCD(a, b)
	q := a / g
	r := q * b
	if r/b != q {
		return 0, fmt.Errorf("config: hyperperiod overflow computing lcm(%d,%d)", a, b)
	}
	return r, nil
}

// LCM returns the least common multiple of a and b. It panics on overflow;
// all user-supplied period sets pass through Validate, which rejects
// overflowing combinations with a proper error first, so a panic here
// indicates a programmer error (Hyperperiod called on an unvalidated
// configuration).
func LCM(a, b int64) int64 {
	r, err := LCMChecked(a, b)
	if err != nil {
		panic(err.Error())
	}
	return r
}

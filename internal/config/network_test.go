package config

import (
	"bytes"
	"strings"
	"testing"
)

func switched() *System {
	s := demo()
	s.Messages[0].TxTime = 3
	s.Net = &Topology{
		Ports:  []Port{{Name: "p0"}, {Name: "p1"}},
		Routes: [][]int{{0, 1}},
	}
	return s
}

func TestNetworkValidation(t *testing.T) {
	if err := switched().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*System)
		sub  string
	}{
		{"empty port name", func(s *System) { s.Net.Ports[0].Name = "" }, "empty name"},
		{"dup port", func(s *System) { s.Net.Ports[1].Name = "p0" }, "duplicate port"},
		{"route count", func(s *System) { s.Net.Routes = nil }, "routes for"},
		{"bad port idx", func(s *System) { s.Net.Routes[0] = []int{9} }, "unknown port"},
		{"no txtime", func(s *System) { s.Messages[0].TxTime = 0 }, "txTime"},
		{"port twice", func(s *System) { s.Net.Routes[0] = []int{1, 1} }, "twice"},
	}
	for _, c := range cases {
		s := switched()
		c.mut(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.sub) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.sub)
		}
	}
}

func TestNetworkQueries(t *testing.T) {
	s := switched()
	if r := s.RouteOf(0); len(r) != 2 || r[0] != 0 {
		t.Errorf("RouteOf = %v", r)
	}
	if r := s.RouteOf(9); r != nil {
		t.Errorf("out-of-range RouteOf = %v", r)
	}
	hops := s.MessagesThroughPort(1)
	if len(hops) != 1 || hops[0] != (PortHop{Message: 0, Hop: 1}) {
		t.Errorf("hops = %v", hops)
	}
	if s.portName(0) != "p0" || !strings.Contains(s.portName(9), "9") {
		t.Error("portName wrong")
	}
	s.Net = nil
	if r := s.RouteOf(0); r != nil {
		t.Errorf("nil-net RouteOf = %v", r)
	}
	if hops := s.MessagesThroughPort(0); len(hops) != 0 {
		t.Errorf("nil-net hops = %v", hops)
	}
}

func TestNetworkXMLRoundTrip(t *testing.T) {
	s := switched()
	var buf bytes.Buffer
	if err := s.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadXML(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if got.Net == nil || len(got.Net.Ports) != 2 {
		t.Fatalf("net = %+v", got.Net)
	}
	if r := got.RouteOf(0); len(r) != 2 || r[0] != 0 || r[1] != 1 {
		t.Errorf("route = %v", r)
	}
	if got.Messages[0].TxTime != 3 {
		t.Errorf("txTime = %d", got.Messages[0].TxTime)
	}
}

func TestNetworkXMLErrors(t *testing.T) {
	s := switched()
	var buf bytes.Buffer
	if err := s.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(buf.String(), `route="p0 p1"`, `route="p0 nope"`, 1)
	if _, err := ReadXML(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "unknown port") {
		t.Errorf("err = %v", err)
	}
	noNet := strings.Replace(buf.String(), "<network>", "<disabled>", 1)
	noNet = strings.Replace(noNet, "</network>", "</disabled>", 1)
	if _, err := ReadXML(strings.NewReader(noNet)); err == nil || !strings.Contains(err.Error(), "no network") {
		t.Errorf("err = %v", err)
	}
}

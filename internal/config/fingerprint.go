package config

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
)

// Fingerprint returns a stable content address of the configuration: the
// hex SHA-256 of a canonical binary encoding of every semantically
// significant field (names, core types, bindings, policies, task
// parameters, windows, messages and the network topology). Two System
// values that describe the same configuration — however they were
// constructed — hash identically, and any change that could alter the
// analysis verdict or its rendered outputs changes the hash. The analysis
// service uses it as the key of its content-addressed result cache, so a
// sweep or a second client submitting an identical configuration reuses
// the completed run instead of re-interpreting the model.
//
// The encoding is versioned by a leading tag; bump fpVersion when the
// canonical form changes so stale cache entries cannot alias new ones.
func (s *System) Fingerprint() string {
	h := sha256.New()
	e := fpEncoder{h: h}
	e.str(fpVersion)
	e.str(s.Name)
	e.list(len(s.CoreTypes))
	for _, ct := range s.CoreTypes {
		e.str(ct)
	}
	e.list(len(s.Cores))
	for i := range s.Cores {
		c := &s.Cores[i]
		e.str(c.Name)
		e.num(int64(c.Type))
		e.num(int64(c.Module))
	}
	e.list(len(s.Partitions))
	for i := range s.Partitions {
		p := &s.Partitions[i]
		e.str(p.Name)
		e.num(int64(p.Policy))
		e.num(int64(p.Core))
		e.num(p.Quantum)
		e.list(len(p.Tasks))
		for j := range p.Tasks {
			t := &p.Tasks[j]
			e.str(t.Name)
			e.num(int64(t.Priority))
			e.num(t.Period)
			e.num(t.Deadline)
			e.list(len(t.WCET))
			for _, c := range t.WCET {
				e.num(c)
			}
		}
		e.list(len(p.Windows))
		for j := range p.Windows {
			e.num(p.Windows[j].Start)
			e.num(p.Windows[j].End)
		}
	}
	e.list(len(s.Messages))
	for i := range s.Messages {
		m := &s.Messages[i]
		e.str(m.Name)
		e.num(int64(m.SrcPart))
		e.num(int64(m.SrcTask))
		e.num(int64(m.DstPart))
		e.num(int64(m.DstTask))
		e.num(m.MemDelay)
		e.num(m.NetDelay)
		e.num(m.TxTime)
	}
	if s.Net == nil {
		e.list(-1)
	} else {
		e.list(len(s.Net.Ports))
		for i := range s.Net.Ports {
			e.str(s.Net.Ports[i].Name)
		}
		e.list(len(s.Net.Routes))
		for _, route := range s.Net.Routes {
			e.list(len(route))
			for _, p := range route {
				e.num(int64(p))
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

const fpVersion = "stopwatchsim/config/v1"

// fpEncoder writes an unambiguous byte stream: every integer is a tagged
// fixed-width value and every string is length-prefixed, so no two
// distinct field sequences can produce the same bytes.
type fpEncoder struct {
	h   hash.Hash
	buf [9]byte
}

func (e *fpEncoder) num(v int64) {
	e.buf[0] = 'i'
	binary.BigEndian.PutUint64(e.buf[1:], uint64(v))
	e.h.Write(e.buf[:])
}

func (e *fpEncoder) list(n int) {
	e.buf[0] = 'l'
	binary.BigEndian.PutUint64(e.buf[1:], uint64(int64(n)))
	e.h.Write(e.buf[:])
}

func (e *fpEncoder) str(s string) {
	e.buf[0] = 's'
	binary.BigEndian.PutUint64(e.buf[1:], uint64(len(s)))
	e.h.Write(e.buf[:])
	e.h.Write([]byte(s))
}

package config

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

// fpSystem builds the reference two-partition configuration the fingerprint
// tests mutate. A fresh value is returned on every call so mutations cannot
// leak between subtests.
func fpSystem() *System {
	return &System{
		Name:      "fp",
		CoreTypes: []string{"fast", "slow"},
		Cores: []Core{
			{Name: "c1", Type: 0, Module: 1},
			{Name: "c2", Type: 1, Module: 2},
		},
		Partitions: []Partition{
			{
				Name: "P1", Core: 0, Policy: FPPS,
				Tasks: []Task{
					{Name: "a", Priority: 2, WCET: []int64{2, 4}, Period: 10, Deadline: 10},
					{Name: "b", Priority: 1, WCET: []int64{3, 6}, Period: 20, Deadline: 15},
				},
				Windows: []Window{{Start: 0, End: 20}},
			},
			{
				Name: "P2", Core: 1, Policy: EDF,
				Tasks: []Task{
					{Name: "c", Priority: 0, WCET: []int64{1, 2}, Period: 20, Deadline: 20},
				},
				Windows: []Window{{Start: 0, End: 20}},
			},
		},
		Messages: []Message{
			{Name: "m", SrcPart: 0, SrcTask: 1, DstPart: 1, DstTask: 0, MemDelay: 1, NetDelay: 4},
		},
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	a, b := fpSystem(), fpSystem()
	fa, fb := a.Fingerprint(), b.Fingerprint()
	if fa != fb {
		t.Fatalf("identical configs hash differently: %s vs %s", fa, fb)
	}
	if fa != a.Fingerprint() {
		t.Fatal("hashing the same value twice differs")
	}
	if len(fa) != 64 || strings.Trim(fa, "0123456789abcdef") != "" {
		t.Fatalf("fingerprint is not hex sha256: %q", fa)
	}
}

// TestFingerprintRebuildPerturbed reconstructs the same logical
// configuration through an order-perturbing path — tasks gathered from a Go
// map (randomized iteration order) and then sorted back into canonical
// declaration order — and through an XML round trip. Both must hash
// identically to the directly built value.
func TestFingerprintRebuildPerturbed(t *testing.T) {
	ref := fpSystem()
	want := ref.Fingerprint()

	for trial := 0; trial < 8; trial++ {
		sys := fpSystem()
		for pi := range sys.Partitions {
			byName := make(map[string]Task)
			for _, task := range sys.Partitions[pi].Tasks {
				byName[task.Name] = task
			}
			rebuilt := make([]Task, 0, len(byName))
			for _, task := range byName { // map order: randomized
				rebuilt = append(rebuilt, task)
			}
			sort.Slice(rebuilt, func(i, j int) bool { return rebuilt[i].Name < rebuilt[j].Name })
			sys.Partitions[pi].Tasks = rebuilt
		}
		if got := sys.Fingerprint(); got != want {
			t.Fatalf("trial %d: map-rebuilt config hashes %s, want %s", trial, got, want)
		}
	}

	var buf bytes.Buffer
	if err := ref.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	round, err := ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := round.Fingerprint(); got != want {
		t.Fatalf("XML round trip hashes %s, want %s", got, want)
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	ref := fpSystem().Fingerprint()
	cases := []struct {
		name   string
		mutate func(*System)
	}{
		{"wcet", func(s *System) { s.Partitions[0].Tasks[0].WCET[0]++ }},
		{"wcet other core type", func(s *System) { s.Partitions[0].Tasks[1].WCET[1]++ }},
		{"period", func(s *System) { s.Partitions[0].Tasks[1].Period = 40 }},
		{"deadline", func(s *System) { s.Partitions[0].Tasks[1].Deadline = 12 }},
		{"priority", func(s *System) { s.Partitions[0].Tasks[0].Priority = 7 }},
		{"binding", func(s *System) { s.Partitions[1].Core = 0 }},
		{"policy", func(s *System) { s.Partitions[0].Policy = FPNPS }},
		{"quantum", func(s *System) { s.Partitions[0].Quantum = 5 }},
		{"window", func(s *System) { s.Partitions[0].Windows[0].End = 15 }},
		{"message delay", func(s *System) { s.Messages[0].NetDelay = 9 }},
		{"message endpoint", func(s *System) { s.Messages[0].DstTask = 0; s.Messages[0].DstPart = 0 }},
		{"core module", func(s *System) { s.Cores[1].Module = 1 }},
		{"name", func(s *System) { s.Partitions[0].Tasks[0].Name = "z" }},
		{"topology", func(s *System) {
			s.Net = &Topology{Ports: []Port{{Name: "sw0"}}, Routes: [][]int{{0}}}
			s.Messages[0].TxTime = 2
		}},
	}
	seen := map[string]string{ref: "reference"}
	for _, tc := range cases {
		sys := fpSystem()
		tc.mutate(sys)
		got := sys.Fingerprint()
		if got == ref {
			t.Errorf("%s: mutation did not change the fingerprint", tc.name)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("%s: collides with %s", tc.name, prev)
		}
		seen[got] = tc.name
	}
}

func TestJSONRoundTrip(t *testing.T) {
	sys := fpSystem()
	var buf bytes.Buffer
	if err := sys.WriteJSONConfig(&buf); err != nil {
		t.Fatal(err)
	}
	round, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := round.Fingerprint(), sys.Fingerprint(); got != want {
		t.Fatalf("JSON round trip hashes %s, want %s", got, want)
	}
	if round.Partitions[0].Policy != FPPS || round.Partitions[1].Policy != EDF {
		t.Fatalf("policies lost in round trip: %+v", round.Partitions)
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"Name":"x","Partitions":[{"Name":"P","Policy":"NOPE"}]}`)); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"Name":"x"}`)); err == nil {
		t.Fatal("empty system accepted (validation skipped)")
	}
}

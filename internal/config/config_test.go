package config

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// demo returns a small valid two-core, two-partition system with a message.
func demo() *System {
	return &System{
		Name:      "demo",
		CoreTypes: []string{"fast", "slow"},
		Cores: []Core{
			{Name: "c1", Type: 0, Module: 1},
			{Name: "c2", Type: 1, Module: 2},
		},
		Partitions: []Partition{
			{
				Name: "P1", Core: 0, Policy: FPPS,
				Tasks: []Task{
					{Name: "T1", Priority: 2, WCET: []int64{10, 20}, Period: 100, Deadline: 80},
					{Name: "T2", Priority: 1, WCET: []int64{5, 9}, Period: 50, Deadline: 50},
				},
				Windows: []Window{{0, 30}, {50, 80}},
			},
			{
				Name: "P2", Core: 1, Policy: EDF,
				Tasks: []Task{
					{Name: "T3", Priority: 0, WCET: []int64{7, 12}, Period: 100, Deadline: 90},
				},
				Windows: []Window{{0, 100}},
			},
		},
		Messages: []Message{
			{Name: "m1", SrcPart: 0, SrcTask: 0, DstPart: 1, DstTask: 0, MemDelay: 1, NetDelay: 4},
		},
	}
}

func TestDemoValid(t *testing.T) {
	if err := demo().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHyperperiodAndCounts(t *testing.T) {
	s := demo()
	if l := s.Hyperperiod(); l != 100 {
		t.Errorf("L = %d, want 100", l)
	}
	if n := s.TaskCount(); n != 3 {
		t.Errorf("tasks = %d, want 3", n)
	}
	if n := s.JobCount(); n != 4 { // 1 + 2 + 1
		t.Errorf("jobs = %d, want 4", n)
	}
}

func TestWCETAndDelay(t *testing.T) {
	s := demo()
	if c := s.WCETOn(TaskRef{0, 0}); c != 10 {
		t.Errorf("WCET(T1 on fast) = %d, want 10", c)
	}
	if c := s.WCETOn(TaskRef{1, 0}); c != 12 {
		t.Errorf("WCET(T3 on slow) = %d, want 12", c)
	}
	if d := s.Delay(&s.Messages[0]); d != 4 {
		t.Errorf("cross-module delay = %d, want 4 (network)", d)
	}
	s.Cores[1].Module = 1
	if d := s.Delay(&s.Messages[0]); d != 1 {
		t.Errorf("same-module delay = %d, want 1 (memory)", d)
	}
}

func TestUtilization(t *testing.T) {
	s := demo()
	got := s.Utilization(0) // 10/100 + 5/50 = 0.2
	if got < 0.199 || got > 0.201 {
		t.Errorf("U(c1) = %f, want 0.2", got)
	}
}

func TestTaskName(t *testing.T) {
	s := demo()
	if n := s.TaskName(TaskRef{1, 0}); n != "P2.T3" {
		t.Errorf("TaskName = %q", n)
	}
}

func TestGCDLCM(t *testing.T) {
	cases := []struct{ a, b, g, l int64 }{
		{12, 18, 6, 36},
		{5, 7, 1, 35},
		{100, 100, 100, 100},
		{1, 9, 1, 9},
	}
	for _, c := range cases {
		if g := GCD(c.a, c.b); g != c.g {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, g, c.g)
		}
		if l := LCM(c.a, c.b); l != c.l {
			t.Errorf("LCM(%d,%d) = %d, want %d", c.a, c.b, l, c.l)
		}
	}
	if LCM(0, 5) != 0 {
		t.Error("LCM(0,5) should be 0")
	}
}

func TestQuickLCMDivisibility(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int64(a)+1, int64(b)+1
		l := LCM(x, y)
		return l%x == 0 && l%y == 0 && l >= x && l >= y && l <= x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*System)
		sub  string
	}{
		{"no core types", func(s *System) { s.CoreTypes = nil }, "no core types"},
		{"no cores", func(s *System) { s.Cores = nil }, "no cores"},
		{"no partitions", func(s *System) { s.Partitions = nil }, "no partitions"},
		{"dup core type", func(s *System) { s.CoreTypes[1] = "fast" }, "duplicate core type"},
		{"dup core", func(s *System) { s.Cores[1].Name = "c1" }, "duplicate core"},
		{"bad core type idx", func(s *System) { s.Cores[0].Type = 9 }, "out of range"},
		{"dup partition", func(s *System) { s.Partitions[1].Name = "P1" }, "duplicate partition"},
		{"bad binding", func(s *System) { s.Partitions[0].Core = 5 }, "bound core"},
		{"no tasks", func(s *System) { s.Partitions[0].Tasks = nil }, "no tasks"},
		{"dup task", func(s *System) { s.Partitions[0].Tasks[1].Name = "T1" }, "duplicate task"},
		{"bad period", func(s *System) { s.Partitions[0].Tasks[0].Period = 0 }, "period"},
		{"deadline > period", func(s *System) { s.Partitions[0].Tasks[0].Deadline = 200 }, "deadline"},
		{"zero deadline", func(s *System) { s.Partitions[0].Tasks[0].Deadline = 0 }, "deadline"},
		{"short wcet vector", func(s *System) { s.Partitions[0].Tasks[0].WCET = []int64{1} }, "WCET vector"},
		{"zero wcet", func(s *System) { s.Partitions[0].Tasks[0].WCET[0] = 0 }, "non-positive WCET"},
		{"negative priority", func(s *System) { s.Partitions[0].Tasks[0].Priority = -1 }, "priority"},
		{"no windows", func(s *System) { s.Partitions[0].Windows = nil }, "no execution windows"},
		{"window beyond L", func(s *System) { s.Partitions[0].Windows = []Window{{0, 1000}} }, "outside"},
		{"empty window", func(s *System) { s.Partitions[0].Windows = []Window{{10, 10}} }, "outside"},
		{"unsorted windows", func(s *System) { s.Partitions[0].Windows = []Window{{50, 80}, {0, 30}} }, "not sorted"},
		{"self-overlap", func(s *System) { s.Partitions[0].Windows = []Window{{0, 30}, {20, 40}} }, "not sorted"},
		{"cross-partition overlap", func(s *System) {
			s.Partitions[1].Core = 0
			s.Partitions[1].Windows = []Window{{25, 60}}
		}, "overlap"},
		{"dup message", func(s *System) {
			s.Messages = append(s.Messages, s.Messages[0])
		}, "duplicate message"},
		{"bad msg src", func(s *System) { s.Messages[0].SrcTask = 9 }, "sender reference"},
		{"bad msg dst", func(s *System) { s.Messages[0].DstPart = 9 }, "receiver reference"},
		{"self message", func(s *System) {
			s.Messages[0].DstPart = 0
			s.Messages[0].DstTask = 0
		}, "same task"},
		{"period mismatch", func(s *System) {
			s.Messages[0].SrcTask = 1 // T2 has period 50, T3 has 100
		}, "equal periods"},
		{"negative delay", func(s *System) { s.Messages[0].MemDelay = -1 }, "negative transfer delay"},
		{"dependency cycle", func(s *System) {
			s.Messages = append(s.Messages, Message{
				Name: "m2", SrcPart: 1, SrcTask: 0, DstPart: 0, DstTask: 0,
				MemDelay: 1, NetDelay: 1,
			})
		}, "cycle"},
	}
	for _, c := range cases {
		s := demo()
		c.mut(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: expected error containing %q", c.name, c.sub)
			continue
		}
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.sub)
		}
	}
}

func TestMessageQueries(t *testing.T) {
	s := demo()
	in := s.IncomingMessages(TaskRef{1, 0})
	if len(in) != 1 || in[0] != 0 {
		t.Errorf("IncomingMessages = %v", in)
	}
	out := s.OutgoingMessages(TaskRef{0, 0})
	if len(out) != 1 || out[0] != 0 {
		t.Errorf("OutgoingMessages = %v", out)
	}
	if got := s.IncomingMessages(TaskRef{0, 0}); len(got) != 0 {
		t.Errorf("IncomingMessages(T1) = %v", got)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	s := demo()
	var buf bytes.Buffer
	if err := s.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadXML(&buf)
	if err != nil {
		t.Fatalf("ReadXML: %v\nXML:\n%s", err, buf.String())
	}
	if got.Name != s.Name {
		t.Errorf("name = %q", got.Name)
	}
	if len(got.Cores) != 2 || got.Cores[1].Module != 2 || got.Cores[1].Type != 1 {
		t.Errorf("cores = %+v", got.Cores)
	}
	if len(got.Partitions) != 2 {
		t.Fatalf("partitions = %d", len(got.Partitions))
	}
	p1 := got.Partitions[0]
	if p1.Policy != FPPS || len(p1.Tasks) != 2 || len(p1.Windows) != 2 {
		t.Errorf("P1 = %+v", p1)
	}
	if p1.Tasks[0].WCET[1] != 20 {
		t.Errorf("T1 WCET = %v", p1.Tasks[0].WCET)
	}
	if got.Partitions[1].Policy != EDF {
		t.Errorf("P2 policy = %v", got.Partitions[1].Policy)
	}
	if len(got.Messages) != 1 || got.Messages[0].DstPart != 1 || got.Messages[0].NetDelay != 4 {
		t.Errorf("messages = %+v", got.Messages)
	}
}

func TestReadXMLErrors(t *testing.T) {
	cases := []struct{ name, xml, sub string }{
		{"garbage", "<<<", "parsing XML"},
		{"unknown core type", `<system name="x"><coreType name="a"/><module id="1"><core name="c" type="zz"/></module></system>`, "unknown core type"},
		{"unknown core", `<system name="x"><coreType name="a"/><module id="1"><core name="c" type="a"/></module><partition name="P" core="zz" policy="FPPS"/></system>`, "unknown core"},
		{"bad policy", `<system name="x"><coreType name="a"/><module id="1"><core name="c" type="a"/></module><partition name="P" core="c" policy="WEIRD"/></system>`, "unknown scheduling policy"},
		{"bad wcet", `<system name="x"><coreType name="a"/><module id="1"><core name="c" type="a"/></module><partition name="P" core="c" policy="FPPS"><task name="T" priority="1" period="10" deadline="10" wcet="abc"/><window start="0" end="10"/></partition></system>`, "bad wcet"},
		{"unknown sender", `<system name="x"><coreType name="a"/><module id="1"><core name="c" type="a"/></module><partition name="P" core="c" policy="FPPS"><task name="T" priority="1" period="10" deadline="10" wcet="1"/><window start="0" end="10"/></partition><message name="m" from="Z.Z" to="P.T" memDelay="1" netDelay="1"/></system>`, "unknown sender"},
		{"unknown receiver", `<system name="x"><coreType name="a"/><module id="1"><core name="c" type="a"/></module><partition name="P" core="c" policy="FPPS"><task name="T" priority="1" period="10" deadline="10" wcet="1"/><window start="0" end="10"/></partition><message name="m" from="P.T" to="Z.Z" memDelay="1" netDelay="1"/></system>`, "unknown receiver"},
		{"invalid semantics", `<system name="x"><coreType name="a"/><module id="1"><core name="c" type="a"/></module><partition name="P" core="c" policy="FPPS"><task name="T" priority="1" period="10" deadline="20" wcet="1"/><window start="0" end="10"/></partition></system>`, "deadline"},
	}
	for _, c := range cases {
		_, err := ReadXML(strings.NewReader(c.xml))
		if err == nil {
			t.Errorf("%s: expected error containing %q", c.name, c.sub)
			continue
		}
		if !strings.Contains(err.Error(), c.sub) {
			t.Errorf("%s: error %q lacks %q", c.name, err, c.sub)
		}
	}
}

func TestPolicyParse(t *testing.T) {
	for _, p := range []Policy{FPPS, FPNPS, EDF} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%s) = %v, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("expected error")
	}
	if s := Policy(99).String(); !strings.Contains(s, "99") {
		t.Errorf("Policy(99) = %q", s)
	}
}

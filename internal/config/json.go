package config

import (
	"encoding/json"
	"fmt"
	"io"
)

// The JSON configuration format is the direct wire form of the Go structs:
// partitions reference cores by index, messages reference partitions and
// tasks by index, and scheduling policies are spelled by name ("FPPS",
// "FPNPS", "EDF", "RR"). It is the programmatic mirror of the XML schema,
// intended for clients of the analysis service that already hold a
// structured configuration; the XML format remains the human-authored one.

// MarshalJSON renders the policy by name.
func (p Policy) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON accepts a policy name ("FPPS") or its numeric value.
func (p *Policy) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := ParsePolicy(s)
		if err != nil {
			return err
		}
		*p = v
		return nil
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("config: policy must be a name or number, got %s", b)
	}
	if int(n) >= len(policyNames) {
		return fmt.Errorf("config: unknown scheduling policy %d", n)
	}
	*p = Policy(n)
	return nil
}

// ReadJSON decodes and validates a system configuration from JSON.
func ReadJSON(r io.Reader) (*System, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	s := &System{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("config: decoding JSON: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteJSONConfig writes the configuration as indented JSON in the form
// ReadJSON accepts.
func (s *System) WriteJSONConfig(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

package stopwatchsim

import (
	"fmt"
	"math/rand"
	"testing"

	"stopwatchsim/internal/expr"
	"stopwatchsim/internal/gen"
	"stopwatchsim/internal/mc"
	"stopwatchsim/internal/model"
	"stopwatchsim/internal/nsa"
	"stopwatchsim/internal/observer"
	"stopwatchsim/internal/trace"
	"stopwatchsim/internal/xta"
)

// --- Table 1: Model Checking vs the proposed approach -----------------
//
// The bench range stops at 14 jobs to keep `go test -bench=.` tolerable;
// cmd/benchtable -table1 regenerates the full 10–18 row range. The paper's
// shape — MC roughly doubles per job, simulation flat — is visible either
// way.

func BenchmarkTable1_ModelChecking(b *testing.B) {
	for jobs := 10; jobs <= 14; jobs++ {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			sys := gen.Table1Config(jobs)
			m, err := model.Build(sys)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, _, err := mc.CheckSchedulability(m, 0)
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					b.Fatal("table1 config must be schedulable")
				}
			}
		})
	}
}

func BenchmarkTable1_ProposedApproach(b *testing.B) {
	// Model construction is hoisted out of the timed loop: the benchmark
	// measures interpretation + trace analysis (BenchmarkModelBuild covers
	// construction separately).
	for jobs := 10; jobs <= 18; jobs++ {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			sys := gen.Table1Config(jobs)
			m, err := model.Build(sys)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr, _, err := m.Simulate()
				if err != nil {
					b.Fatal(err)
				}
				a, err := trace.Analyze(sys, tr)
				if err != nil {
					b.Fatal(err)
				}
				if !a.Schedulable {
					b.Fatal("table1 config must be schedulable")
				}
			}
		})
	}
}

// --- §4 industrial-scale experiment (~12 500 jobs) ---------------------

func BenchmarkIndustrialScale(b *testing.B) {
	sys := gen.IndustrialConfig()
	b.Run("construction", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := model.Build(sys); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interpretation", func(b *testing.B) {
		m, err := model.Build(sys)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr, _, err := m.Simulate()
			if err != nil {
				b.Fatal(err)
			}
			a, err := trace.Analyze(sys, tr)
			if err != nil {
				b.Fatal(err)
			}
			if !a.Schedulable {
				b.Fatal("industrial config must be schedulable")
			}
		}
	})
}

// --- ablations ----------------------------------------------------------

// BenchmarkAblation_MCDedup quantifies the visited-state de-duplication in
// the model checker: NoDedup walks the full run tree.
func BenchmarkAblation_MCDedup(b *testing.B) {
	// 4 jobs: the raw run tree grows factorially with the number of
	// simultaneous transitions, so only small family members are feasible
	// without de-duplication — which is exactly the point of the ablation.
	sys := gen.Table1Config(4)
	for _, mode := range []struct {
		name    string
		noDedup bool
	}{{"dedup", false}, {"runtree", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := model.Build(sys)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := mc.Explore(m.Net, mc.Options{
					Horizon: m.Horizon, NoDedup: mode.noDedup, MaxStates: 50_000_000,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_ObserverOverhead measures the cost of running the full
// §3 observer library alongside a simulation.
func BenchmarkAblation_ObserverOverhead(b *testing.B) {
	sys := gen.Random(5, gen.DefaultRandomParams())
	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := model.Build(sys)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := m.Simulate(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("observed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := model.Build(sys)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := observer.VerifyRun(m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_Chooser compares the deterministic first-transition
// chooser against seeded random choice (the determinism theorem makes both
// produce equivalent traces; the question is pure engine overhead).
func BenchmarkAblation_Chooser(b *testing.B) {
	sys := gen.Random(9, gen.DefaultRandomParams())
	b.Run("first", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := model.Build(sys)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := m.SimulateWith(nsa.FirstChooser{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("random", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := model.Build(sys)
			if err != nil {
				b.Fatal(err)
			}
			ch := nsa.RandomChooser{Rng: rand.New(rand.NewSource(int64(i)))}
			if _, _, err := m.SimulateWith(ch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- component micro-benchmarks -----------------------------------------

func BenchmarkExprEval(b *testing.B) {
	sc := expr.MapScope{
		"x": {Kind: expr.SymVar, Index: 0},
		"t": {Kind: expr.SymClock, Index: 0},
	}
	n := expr.MustParseResolve("t <= 10 && x * 3 + 1 > 2", sc, expr.TypeBool)
	env := benchEnv{vars: []int64{4}, clocks: []int64{5}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !n.EvalBool(env) {
			b.Fatal("expected true")
		}
	}
}

type benchEnv struct {
	vars   []int64
	clocks []int64
}

func (e benchEnv) Var(i int) int64   { return e.vars[i] }
func (e benchEnv) Clock(i int) int64 { return e.clocks[i] }

func BenchmarkModelBuild(b *testing.B) {
	sys := gen.IndustrialConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := model.Build(sys); err != nil {
			b.Fatal(err)
		}
	}
}

const benchXTA = `
const int N = 5;
int x = 0;
chan go;
process P(const int k) {
    clock t;
    state A { t <= k }, B;
    init A;
    trans A -> B { guard t == k; sync go!; assign x := x + k; };
}
process Q() {
    state C;
    init C;
    trans C -> C { sync go?; };
}
system P(1), P(2), P(3), Q();
`

func BenchmarkXTACompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := xta.Compile(benchXTA); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	// Actions per second on a mid-size configuration.
	sys := gen.Random(21, gen.RandomParams{
		MaxCores: 2, MaxPartitions: 3, MaxTasks: 3,
		Periods: []int64{20, 40, 80}, MaxUtil: 0.9, Messages: 2,
	})
	m, err := model.Build(sys)
	if err != nil {
		b.Fatal(err)
	}
	probe, _, err := m.Simulate()
	if err != nil {
		b.Fatal(err)
	}

	// Full pipeline per op (engine construction + trace building), as the
	// committed baselines measured it.
	b.Run("pipeline", func(b *testing.B) {
		b.ReportMetric(float64(len(probe.Events)), "events/run")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := m.Simulate(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Steady state per backend: one persistent engine, Reset+Run per op, no
	// listeners. The compiled backend must report 0 allocs/op here
	// (TestEngineSteadyStateZeroAlloc asserts it).
	for _, bk := range []nsa.Backend{nsa.BackendEvent, nsa.BackendCompiled} {
		b.Run(bk.String(), func(b *testing.B) {
			eng := nsa.NewEngine(m.Net, nsa.Options{Horizon: m.Horizon, Backend: bk})
			if _, err := eng.Run(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Reset()
				if _, err := eng.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
